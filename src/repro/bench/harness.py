"""Table plumbing for the figure benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class FigureData:
    """One reproduced figure: named columns and rows of measurements."""

    name: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.name}: row has {len(values)} entries, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(list(values))
        # when a profiling session is active, attribute the metric delta
        # since the previous row to this row (repro.prof.session no-ops
        # in a couple of attribute reads otherwise)
        from repro.prof import session

        session.notify_row(self.name, list(values))

    def column(self, name: str) -> List[Any]:
        i = self.columns.index(name)
        return [row[i] for row in self.rows]

    def as_dict(self) -> Dict[str, List[Any]]:
        return {c: self.column(c) for c in self.columns}


def improvement(baseline: float, optimized: float) -> float:
    """Percentage improvement of ``optimized`` over ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (1.0 - optimized / baseline)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def print_figure(fig: FigureData) -> str:
    """Render a figure as an aligned text table; returns what it prints."""
    lines = [f"== {fig.name}: {fig.title} =="]
    cells = [fig.columns] + [[_fmt(v) for v in row] for row in fig.rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(fig.columns))]
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    for note in fig.notes:
        lines.append(f"  note: {note}")
    text = "\n".join(lines)
    print(text)
    return text
