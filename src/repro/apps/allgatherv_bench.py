"""The nonuniform Allgatherv microbenchmark (paper section 5.3, Fig. 14).

Rank 0 contributes ``big_doubles`` doubles while every other rank
contributes a single double -- the outlier pattern that serialises the ring
algorithm (Fig. 8).  Measures average latency across ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.mpi import Cluster, MPIConfig
from repro.util.costmodel import CostModel


@dataclass
class AllgathervResult:
    nprocs: int
    big_doubles: int
    latency: float
    correct: bool


def allgatherv_benchmark(
    nprocs: int,
    big_doubles: int,
    config: MPIConfig,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    repeats: int = 1,
    fault_plan: Optional[Any] = None,
    observe: Optional[Callable[[Cluster], None]] = None,
) -> AllgathervResult:
    """Latency of one (or the mean of ``repeats``) Allgatherv calls.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) injects faults;
    ``observe`` receives the freshly built cluster before the ranks run
    (the chaos harness uses it to attach instrumentation).
    """
    cluster = Cluster(nprocs, config=config, cost=cost, seed=seed,
                      fault_plan=fault_plan)
    if observe is not None:
        observe(cluster)
    counts = [1] * nprocs
    counts[0] = big_doubles
    total = sum(counts)
    displs = np.concatenate(([0], np.cumsum(counts[:-1]))).astype(int).tolist()
    checks = []

    def main(comm):
        send = np.full(counts[comm.rank], float(comm.rank + 1))
        recv = np.zeros(total)
        yield from comm.barrier()
        start = comm.engine.now
        for _ in range(repeats):
            yield from comm.allgatherv(send, recv, counts, displs)
        elapsed = (comm.engine.now - start) / repeats
        checks.append(recv)
        return elapsed

    latencies = cluster.run(main)
    expect = np.concatenate(
        [np.full(c, float(r + 1)) for r, c in enumerate(counts)]
    )
    correct = all(np.array_equal(r, expect) for r in checks)
    return AllgathervResult(
        nprocs, big_doubles, float(np.mean(latencies)), correct
    )
