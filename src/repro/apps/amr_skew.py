"""FLASH-style adaptive-mesh workload (the paper's future work, section 7).

The paper closes by pointing at FLASH: block-structured adaptive meshes
whose "area of interest is dynamically discovered", with work load-balanced
between processors -- creating exactly the skewed, nonuniform-volume,
sparse communication the proposed MPI designs target.

This module implements a compact version of that workload:

- the domain is a 2-D grid of **blocks**; each block refines to a level set
  by its distance to a moving feature (a circular front), with work and
  data growing 4x per level,
- blocks are **load-balanced** along a Morton (Z-order) curve by prefix
  sums of their work, so ownership shifts every rebalance step,
- each timestep performs: local compute (charged per-rank; the
  heterogeneous halves of the machine introduce natural skew), a **halo
  exchange** between adjacent blocks (volumes depend on both blocks'
  levels: highly nonuniform, zero to most ranks) through ``Alltoallw``,
  and periodically a **migration** of blocks to their new owners, also
  through ``Alltoallw``,
- block payloads are stamped and verified after every migration, so the
  workload is also a correctness test of the communication stack.

Baseline vs optimised MPI configurations can then be compared on a workload
whose *communication pattern changes every step* -- the regime the paper's
binned Alltoallw is built for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.datatypes import DOUBLE, TypedBuffer
from repro.mpi import Cluster, MPIConfig
from repro.mpi.collectives.alltoallw import alltoallw
from repro.util.costmodel import CostModel

#: flops charged per cell per timestep
FLOPS_PER_CELL = 12.0


def morton_order(nblocks_per_dim: int) -> np.ndarray:
    """Block ids (row-major) sorted along the Z-order curve."""
    n = nblocks_per_dim
    ids = np.arange(n * n, dtype=np.int64)
    bx, by = ids % n, ids // n
    codes = np.zeros_like(ids)
    for bit in range(max(1, n).bit_length()):
        codes |= ((bx >> bit) & 1) << (2 * bit)
        codes |= ((by >> bit) & 1) << (2 * bit + 1)
    return ids[np.argsort(codes, kind="stable")]


@dataclass
class AMRConfig:
    """Workload parameters."""

    blocks_per_dim: int = 8
    base_cells: int = 8        # cells per block side at level 0
    max_level: int = 2
    feature_radius: float = 0.18   # fully-refined zone around the feature
    halo_radius: float = 0.38      # level-1 zone
    steps: int = 6
    rebalance_every: int = 2


class AMRDriver:
    """Per-rank state of the adaptive mesh (instantiated inside a rank)."""

    def __init__(self, comm, params: AMRConfig):
        self.comm = comm
        self.p = params
        n = params.blocks_per_dim
        self.nblocks = n * n
        self.order = morton_order(n)
        centers = (np.stack([self.order % n, self.order // n], axis=1) + 0.5) / n
        self.centers = centers  # in Morton order
        self.levels = np.zeros(self.nblocks, dtype=np.int64)
        self.owners = np.zeros(self.nblocks, dtype=np.int64)
        #: per-block payload (only blocks this rank owns); id -> array
        self.data: Dict[int, np.ndarray] = {}
        self.migrated_cells = 0
        self.halo_bytes = 0

    # -- refinement & balance (deterministic, computed by every rank) ------------

    def feature_position(self, t: int) -> np.ndarray:
        angle = 2.0 * np.pi * t / max(1, self.p.steps)
        return np.array([0.5 + 0.3 * np.cos(angle), 0.5 + 0.3 * np.sin(angle)])

    def compute_levels(self, t: int) -> np.ndarray:
        dist = np.linalg.norm(self.centers - self.feature_position(t), axis=1)
        levels = np.zeros(self.nblocks, dtype=np.int64)
        levels[dist < self.p.halo_radius] = max(0, self.p.max_level - 1)
        levels[dist < self.p.feature_radius] = self.p.max_level
        return levels

    def block_cells(self, levels: np.ndarray) -> np.ndarray:
        return (self.p.base_cells ** 2) * 4 ** levels

    def balanced_owners(self, levels: np.ndarray) -> np.ndarray:
        """Contiguous Morton-order chunks with ~equal total work."""
        work = self.block_cells(levels).astype(np.float64)
        csum = np.cumsum(work)
        total = csum[-1]
        nranks = self.comm.size
        owners = np.minimum(
            (csum - work / 2) / total * nranks, nranks - 1
        ).astype(np.int64)
        return owners

    # -- data management -----------------------------------------------------------

    def block_id(self, k: int) -> int:
        """Global (row-major) id of the k-th block in Morton order."""
        return int(self.order[k])

    def init_data(self, t: int = 0) -> None:
        self.levels = self.compute_levels(t)
        self.owners = self.balanced_owners(self.levels)
        cells = self.block_cells(self.levels)
        for k in range(self.nblocks):
            if self.owners[k] == self.comm.rank:
                self.data[k] = np.full(int(cells[k]), float(self.block_id(k)))

    def migrate(self, new_levels: np.ndarray, new_owners: np.ndarray) -> Generator:
        """Ship blocks to their new owners (resampling changed levels)."""
        comm = self.comm
        new_cells = self.block_cells(new_levels)
        send_blocks: Dict[int, List[int]] = {}
        recv_blocks: Dict[int, List[int]] = {}
        for k in range(self.nblocks):
            src, dst = int(self.owners[k]), int(new_owners[k])
            if src == comm.rank:
                # resample to the new level before shipping/keeping
                value = float(self.block_id(k))
                self.data[k] = np.full(int(new_cells[k]), value)
                if dst != comm.rank:
                    send_blocks.setdefault(dst, []).append(k)
            elif dst == comm.rank:
                recv_blocks.setdefault(src, []).append(k)

        sendspecs: List[Optional[TypedBuffer]] = [None] * comm.size
        recvspecs: List[Optional[TypedBuffer]] = [None] * comm.size
        send_payloads = {}
        recv_payloads = {}
        for peer, blocks in send_blocks.items():
            payload = np.concatenate([self.data[k] for k in blocks])
            send_payloads[peer] = payload
            sendspecs[peer] = TypedBuffer(payload, DOUBLE, payload.size)
        for peer, blocks in recv_blocks.items():
            total = int(sum(new_cells[k] for k in blocks))
            buf = np.empty(total)
            recv_payloads[peer] = (buf, blocks)
            recvspecs[peer] = TypedBuffer(buf, DOUBLE, total)
        yield from alltoallw(comm, sendspecs, recvspecs)
        for peer, (buf, blocks) in recv_payloads.items():
            pos = 0
            for k in blocks:
                n = int(new_cells[k])
                self.data[k] = buf[pos:pos + n].copy()
                self.migrated_cells += n
                pos += n
        for peer, blocks in send_blocks.items():
            for k in blocks:
                del self.data[k]
        self.levels = new_levels
        self.owners = new_owners

    # -- per-step phases ----------------------------------------------------------

    def neighbours(self, k: int) -> List[int]:
        """Morton-order indices of the 4-adjacent blocks of block k."""
        n = self.p.blocks_per_dim
        gid = self.block_id(k)
        bx, by = gid % n, gid // n
        out = []
        inv = np.empty(self.nblocks, dtype=np.int64)
        inv[self.order] = np.arange(self.nblocks)
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = bx + dx, by + dy
            if 0 <= nx < n and 0 <= ny < n:
                out.append(int(inv[ny * n + nx]))
        return out

    def halo_exchange(self) -> Generator:
        """Exchange one block-face worth of data per adjacent block pair;
        the face size follows the finer of the two blocks."""
        comm = self.comm
        volumes = np.zeros(comm.size, dtype=np.int64)
        for k in range(self.nblocks):
            if self.owners[k] != comm.rank:
                continue
            for j in self.neighbours(k):
                peer = int(self.owners[j])
                if peer == comm.rank:
                    continue
                face = self.p.base_cells * 2 ** max(self.levels[k], self.levels[j])
                volumes[peer] += int(face)
        sendspecs: List[Optional[TypedBuffer]] = [None] * comm.size
        recvspecs: List[Optional[TypedBuffer]] = [None] * comm.size
        recv_volumes = np.zeros(comm.size, dtype=np.int64)
        for k in range(self.nblocks):
            if self.owners[k] == comm.rank:
                continue
            for j in self.neighbours(k):
                if int(self.owners[j]) == comm.rank:
                    face = self.p.base_cells * 2 ** max(self.levels[k], self.levels[j])
                    recv_volumes[self.owners[k]] += int(face)
        for peer in range(comm.size):
            if volumes[peer]:
                buf = np.zeros(int(volumes[peer]))
                sendspecs[peer] = TypedBuffer(buf, DOUBLE, buf.size)
                self.halo_bytes += buf.nbytes
            if recv_volumes[peer]:
                buf = np.zeros(int(recv_volumes[peer]))
                recvspecs[peer] = TypedBuffer(buf, DOUBLE, buf.size)
        yield from alltoallw(comm, sendspecs, recvspecs)

    def compute_phase(self) -> Generator:
        cells = sum(arr.size for arr in self.data.values())
        yield from self.comm.cpu(cells * self.comm.cost.flop * FLOPS_PER_CELL)

    def verify(self) -> bool:
        """Every owned block's payload carries its own id."""
        for k, arr in self.data.items():
            if arr.size == 0 or not np.all(arr == float(self.block_id(k))):
                return False
        return True

    # -- the driver loop ----------------------------------------------------------

    def run(self) -> Generator:
        self.init_data(0)
        yield from self.comm.barrier()
        t0 = self.comm.engine.now
        for t in range(1, self.p.steps + 1):
            if t % self.p.rebalance_every == 0:
                new_levels = self.compute_levels(t)
                new_owners = self.balanced_owners(new_levels)
                yield from self.migrate(new_levels, new_owners)
            yield from self.halo_exchange()
            yield from self.compute_phase()
        elapsed = self.comm.engine.now - t0
        return elapsed, self.verify(), self.migrated_cells


@dataclass
class AMRResult:
    nprocs: int
    time_per_step: float
    correct: bool
    migrated_cells: int


def amr_skew_benchmark(
    nprocs: int,
    config: MPIConfig,
    params: Optional[AMRConfig] = None,
    cost: Optional[CostModel] = None,
    seed: int = 0,
) -> AMRResult:
    """Run the AMR workload under one MPI configuration."""
    params = params or AMRConfig()
    cluster = Cluster(nprocs, config=config, cost=cost, seed=seed)

    def main(comm):
        driver = AMRDriver(comm, params)
        result = yield from driver.run()
        return result

    outcomes = cluster.run(main)
    elapsed = max(t for t, _ok, _m in outcomes)
    correct = all(ok for _t, ok, _m in outcomes)
    migrated = sum(m for _t, _ok, m in outcomes)
    return AMRResult(nprocs, elapsed / params.steps, correct, migrated)
