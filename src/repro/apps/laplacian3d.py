"""The 3-D Laplacian multigrid solver application (section 5.5, Fig. 17).

Solves the Poisson problem derived from the paper's 3-D Laplacian PDE
(Eq. 2) on a ``100^3`` grid with one degree of freedom and homogeneous
Dirichlet conditions on the unit cube, using a three-level geometric
multigrid solver built on the PETSc-like toolkit.  The right-hand side
varies smoothly across the grid in every dimension, as the paper describes.

Every smoothing sweep, residual evaluation and grid transfer funnels
noncontiguous ghost/subarray data through the MPI layer, so end-to-end
execution time directly reflects the communication stack under test:

- ``hand-tuned``     : PETSc's explicit pack + point-to-point scatters,
- ``MVAPICH2-0.9.5`` : datatypes + collectives over the baseline MPI,
- ``MVAPICH2-New``   : datatypes + collectives over the optimised MPI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mpi import Cluster, MPIConfig
from repro.petsc import DMDA, MGSolver
from repro.util.costmodel import CostModel

GRID = (100, 100, 100)
LEVELS = 3


def _rhs(da: DMDA) -> np.ndarray:
    """A smooth forcing field varying in x, y and z (paper: 'the data grid
    varies the values of the variants (x, y, z) uniformly across the
    grid')."""
    lo, hi = da.owned_box()
    axes = []
    for d in range(3):
        n = da.dims[d]
        centers = (np.arange(lo[d], hi[d]) + 0.5) / max(n, 1)
        axes.append(np.sin(np.pi * centers) if n > 1 else np.ones(hi[d] - lo[d]))
    u = axes[0][:, None, None] * axes[1][None, :, None] * axes[2][None, None, :]
    return (3.0 * np.pi**2 * u).reshape(-1)


@dataclass
class LaplacianResult:
    nprocs: int
    backend: str
    config_name: str
    execution_time: float
    cycles: int
    residual_reduction: float
    converged: bool


def laplacian3d_solve(
    nprocs: int,
    backend: str,
    config: MPIConfig,
    grid=GRID,
    levels: int = LEVELS,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    rtol: float = 1e-6,
    max_cycles: int = 15,
    fixed_cycles: Optional[int] = None,
) -> LaplacianResult:
    """Run the solver once and report simulated execution time.

    With ``fixed_cycles`` set, exactly that many V-cycles run (plus initial
    and final residual norms) regardless of tolerance -- all three
    implementations then perform identical numerical work, which is what
    the Fig. 17 timing comparison needs.
    """
    cluster = Cluster(nprocs, config=config, cost=cost, seed=seed)

    def main(comm):
        da = DMDA(comm, grid, dof=1, stencil="star", stencil_width=1)
        mg = MGSolver(da, nlevels=levels, backend=backend)
        b = da.create_global_vec()
        b.local[:] = _rhs(da)
        x = da.create_global_vec()
        yield from comm.barrier()
        t0 = comm.engine.now
        if fixed_cycles is None:
            result = yield from mg.solve(b, x, rtol=rtol, max_cycles=max_cycles)
        else:
            op = mg.ops[0]
            r = mg._r[0]
            yield from op.residual(b, x, r)
            norm0 = yield from r.norm()
            for _ in range(fixed_cycles):
                yield from mg.vcycle(0, b, x)
            yield from op.residual(b, x, r)
            norm1 = yield from r.norm()
            from repro.petsc.ksp import SolveResult
            result = SolveResult(
                norm1 <= rtol * norm0, fixed_cycles, [norm0, norm1]
            )
        return comm.engine.now - t0, result

    outcomes = cluster.run(main)
    elapsed = max(t for t, _ in outcomes)
    result = outcomes[0][1]
    return LaplacianResult(
        nprocs=nprocs,
        backend=backend,
        config_name=config.name,
        execution_time=elapsed,
        cycles=result.iterations,
        residual_reduction=result.reduction(),
        converged=result.converged,
    )


def laplacian3d_benchmark(
    nprocs: int,
    implementation: str,
    grid=GRID,
    levels: int = LEVELS,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    rtol: float = 1e-6,
    max_cycles: int = 15,
    fixed_cycles: Optional[int] = None,
) -> LaplacianResult:
    """Run one of the paper's three implementations by name:
    ``"hand-tuned"``, ``"MVAPICH2-0.9.5"`` or ``"MVAPICH2-New"``."""
    if implementation == "hand-tuned":
        # hand-tuned never touches datatypes or Alltoallw, so the MPI
        # configuration is immaterial; use the baseline as the paper did
        backend, config = "hand_tuned", MPIConfig.baseline()
    elif implementation == "MVAPICH2-0.9.5":
        backend, config = "datatype", MPIConfig.baseline()
    elif implementation == "MVAPICH2-New":
        backend, config = "datatype", MPIConfig.optimized()
    else:
        raise ValueError(f"unknown implementation {implementation!r}")
    return laplacian3d_solve(
        nprocs, backend, config, grid=grid, levels=levels, cost=cost,
        seed=seed, rtol=rtol, max_cycles=max_cycles, fixed_cycles=fixed_cycles,
    )
