"""The matrix-transpose microbenchmark (paper section 5.2, Figs. 12-13).

Rank 0 sends an ``n x n`` matrix of doubles to rank 1 *in column-major
order* while rank 1 receives it in row-major order, so the received matrix
is the transpose.  The send datatype is the paper's classic construction: a
strided column type resized to one element's extent, tiled ``n`` times --
``n^2`` single-element blocks, the worst case for the pack engine.

Returns both the simulated latency and the per-category time breakdown
(communication / packing / context search) needed for Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.datatypes import DOUBLE, Contiguous, Resized, TypedBuffer, Vector
from repro.mpi import Cluster, MPIConfig
from repro.util.costmodel import CostModel


def column_major_type(n: int):
    """A datatype reading an ``n x n`` row-major double matrix column by
    column: column = Vector(n, 1, n); tiled at 8-byte steps via Resized."""
    column = Vector(n, 1, n, DOUBLE)
    return Contiguous(n, Resized(column, DOUBLE.extent))


@dataclass
class TransposeResult:
    """One benchmark point."""

    n: int
    latency: float                 # simulated seconds
    breakdown: Dict[str, float]    # comm/pack/search/lookahead seconds
    correct: bool

    def breakdown_fractions(self) -> Dict[str, float]:
        total = sum(self.breakdown.values())
        if total <= 0:
            return {k: 0.0 for k in self.breakdown}
        return {k: v / total for k, v in self.breakdown.items()}


def transpose_benchmark(
    n: int,
    config: MPIConfig,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    verify: bool = True,
) -> TransposeResult:
    """Run one transpose of an ``n x n`` double matrix under ``config``."""
    cluster = Cluster(2, config=config, cost=cost, seed=seed, heterogeneous=False)
    check = {}

    def main(comm):
        if comm.rank == 0:
            m = np.arange(n * n, dtype=np.float64).reshape(n, n) if verify \
                else np.zeros((n, n))
            tb = TypedBuffer(m, column_major_type(n))
            yield from comm.send(tb, dest=1, tag=0)
            check["sent"] = m if verify else None
            return None
        buf = np.zeros((n, n))
        yield from comm.recv(buf, source=0, tag=0)
        check["received"] = buf if verify else None
        return None

    cluster.run(main)
    correct = True
    if verify:
        correct = bool(np.array_equal(check["received"], check["sent"].T))
    ledger = cluster.ledgers[0].merged(cluster.ledgers[1])
    breakdown = {
        "comm": ledger.get("comm"),
        "pack": ledger.get("pack"),
        "search": ledger.get("search"),
        "lookahead": ledger.get("lookahead"),
    }
    return TransposeResult(n, cluster.elapsed, breakdown, correct)
