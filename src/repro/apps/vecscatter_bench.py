"""The PETSc vector-scatter benchmark (paper section 5.4, Fig. 16).

Two 1-D grids are laid out in parallel over all ranks (constant elements
per process -- weak scaling).  Each process scatters its portion of the
first vector into a *unique portion* of the second vector: the portion
owned by its ring successor, interleaved with stride P inside that portion
(so the receive side is noncontiguous).  Per-rank communication volumes are
maximally nonuniform -- everything to one rank, zero to the rest -- which is
exactly the pattern PETSc generates for grid applications.

Three implementations are compared, as in the paper:

- ``hand-tuned``             : explicit pack + point-to-point (PETSc default),
- ``MVAPICH2-0.9.5``         : MPI datatypes + Alltoallw over the baseline MPI,
- ``MVAPICH2-New``           : the same code path over the optimised MPI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mpi import Cluster, MPIConfig
from repro.petsc import GeneralIS, Layout, Vec, VecScatter
from repro.util.costmodel import CostModel

#: doubles owned by each process (weak scaling)
PER_PROCESS = 2048


@dataclass
class VecScatterResult:
    nprocs: int
    backend: str
    config_name: str
    latency: float
    correct: bool


def _pattern(nprocs: int, per: int):
    """(src_idx, dst_idx): rank p's block -> rank (p+1)'s block, interleaved.

    Within the destination block the elements land with stride P' (the
    largest divisor of ``per`` <= nprocs), making the receive side
    noncontiguous whenever nprocs > 1.
    """
    stride = 1
    for s in range(min(nprocs, per), 0, -1):
        if per % s == 0:
            stride = s
            break
    m = per // stride
    k = np.arange(per, dtype=np.int64)
    # block-transpose permutation within the destination block
    sigma = (k % m) * stride + k // m
    src = np.concatenate([p * per + k for p in range(nprocs)])
    dst = np.concatenate(
        [((p + 1) % nprocs) * per + sigma for p in range(nprocs)]
    )
    return src, dst


def vecscatter_benchmark(
    nprocs: int,
    backend: str,
    config: MPIConfig,
    cost: Optional[CostModel] = None,
    per_process: int = PER_PROCESS,
    seed: int = 0,
    repeats: int = 1,
) -> VecScatterResult:
    cluster = Cluster(nprocs, config=config, cost=cost, seed=seed)
    src_idx, dst_idx = _pattern(nprocs, per_process)
    gsize = nprocs * per_process
    shared_layout = Layout(nprocs, gsize)
    shared_owners = (
        shared_layout.owners(src_idx), shared_layout.owners(dst_idx)
    )

    def main(comm):
        lay = Layout(comm.size, gsize)
        x = Vec(comm, lay)
        y = Vec(comm, lay)
        start, end = x.owned_range
        x.local[:] = np.arange(start, end, dtype=np.float64)
        sc = VecScatter.from_index_sets(
            comm, lay, GeneralIS(src_idx), lay, GeneralIS(dst_idx),
            owners=shared_owners,
        )
        yield from comm.barrier()
        t0 = comm.engine.now
        for _ in range(repeats):
            yield from sc.scatter(x, y, backend=backend)
        elapsed = (comm.engine.now - t0) / repeats
        return elapsed, y.local.copy()

    outcomes = cluster.run(main)
    latencies = [t for t, _ in outcomes]
    got = np.concatenate([part for _, part in outcomes])
    expect = np.zeros(gsize)
    expect[dst_idx] = src_idx.astype(np.float64)
    correct = bool(np.array_equal(got, expect))
    return VecScatterResult(
        nprocs, backend, config.name, float(np.mean(latencies)), correct
    )
