"""The paper's evaluation drivers (section 5).

- :mod:`repro.apps.transpose` -- the matrix-transpose microbenchmark
  (Figs. 12-13),
- :mod:`repro.apps.allgatherv_bench` -- the nonuniform Allgatherv
  microbenchmark (Fig. 14),
- :mod:`repro.apps.alltoallw_bench` -- the nearest-neighbour Alltoallw
  microbenchmark (Fig. 15),
- :mod:`repro.apps.vecscatter_bench` -- the PETSc vector-scatter benchmark
  (Fig. 16),
- :mod:`repro.apps.laplacian3d` -- the 3-D Laplacian multigrid solver
  application (Fig. 17).
"""

from repro.apps.transpose import transpose_benchmark
from repro.apps.allgatherv_bench import allgatherv_benchmark
from repro.apps.alltoallw_bench import alltoallw_ring_benchmark
from repro.apps.vecscatter_bench import vecscatter_benchmark
from repro.apps.laplacian3d import laplacian3d_benchmark, laplacian3d_solve

__all__ = [
    "allgatherv_benchmark",
    "alltoallw_ring_benchmark",
    "laplacian3d_benchmark",
    "laplacian3d_solve",
    "transpose_benchmark",
    "vecscatter_benchmark",
]
