"""Gray-Scott reaction-diffusion on a distributed grid.

A second domain application exercising the DMDA layer the way the paper's
section 2.1 describes PETSc applications: **multiple field values stored
interlaced** (here two species, u and v, per grid point), a star-stencil
ghost exchange per time step, and periodic boundaries.

The ghost region of a dof=2 DMDA is noncontiguous at *two* granularities --
strided rows of interleaved pairs -- making the derived datatypes richer
than the single-dof Laplacian's, which is precisely the kind of layout the
dual-context engine and binned Alltoallw were designed for.

The model (Pearson 1993)::

    u_t = Du lap(u) - u v^2 + F (1 - u)
    v_t = Dv lap(v) + u v^2 - (F + kappa) v

integrated with explicit Euler; the default parameters sit in the
spot-forming regime, so a small central perturbation grows structure --
which doubles as the correctness check (the pattern must be identical
under every backend/configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

import numpy as np

from repro.mpi import Cluster, MPIConfig
from repro.petsc import DMDA
from repro.util.costmodel import CostModel

#: flops per grid point per step (two stencils + reaction terms)
FLOPS_PER_POINT = 30.0


@dataclass
class GrayScottParams:
    grid: Tuple[int, int] = (64, 64)
    Du: float = 0.16
    Dv: float = 0.08
    F: float = 0.035
    kappa: float = 0.060
    dt: float = 1.0
    steps: int = 40


def _initial_state(da: DMDA) -> np.ndarray:
    """u=1, v=0 everywhere except a perturbed central square."""
    lo, hi = da.owned_box()
    ny, nx = da.dims[1], da.dims[2]
    state = np.zeros(da.local_shape)  # (1, ym, xm, 2) squeezed -> shape has dof
    state = state.reshape(hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2], da.dof)
    state[..., 0] = 1.0
    cy, cx = ny // 2, nx // 2
    r = max(2, min(ny, nx) // 10)
    ys = np.arange(lo[1], hi[1])
    xs = np.arange(lo[2], hi[2])
    in_y = (ys >= cy - r) & (ys < cy + r)
    in_x = (xs >= cx - r) & (xs < cx + r)
    box = np.ix_([True], in_y, in_x)
    state[..., 0][box] = 0.50
    state[..., 1][box] = 0.25
    return state


class GrayScott:
    """Per-rank driver (instantiate inside a rank generator)."""

    def __init__(self, comm, params: GrayScottParams, backend: str = "datatype"):
        self.comm = comm
        self.p = params
        self.backend = backend
        self.da = DMDA(
            comm, params.grid, dof=2, stencil="star", stencil_width=1,
            periodic=True,
        )
        self.x = self.da.create_global_vec()
        self.x.local[:] = _initial_state(self.da).reshape(-1)
        self._lbuf = self.da.create_local_array()

    def step(self) -> Generator:
        da, p = self.da, self.p
        yield from da.global_to_local(self.x, self._lbuf, backend=self.backend)
        g = self._lbuf  # (1, ym+2, xm+2, 2)
        u = g[0, :, :, 0]
        v = g[0, :, :, 1]
        core = (slice(1, -1), slice(1, -1))

        def lap(f):
            return (
                f[:-2, 1:-1] + f[2:, 1:-1] + f[1:-1, :-2] + f[1:-1, 2:]
                - 4.0 * f[1:-1, 1:-1]
            )

        uc, vc = u[core], v[core]
        uvv = uc * vc * vc
        du = p.Du * lap(u) - uvv + p.F * (1.0 - uc)
        dv = p.Dv * lap(v) + uvv - (p.F + p.kappa) * vc
        out = self.da.global_array(self.x)
        out = out.reshape(out.shape[0], out.shape[1], out.shape[2], 2)
        out[0, :, :, 0] = uc + p.dt * du
        out[0, :, :, 1] = vc + p.dt * dv
        yield from self.comm.cpu(
            uc.size * self.comm.cost.flop * FLOPS_PER_POINT
        )

    def run(self) -> Generator:
        yield from self.comm.barrier()
        t0 = self.comm.engine.now
        for _ in range(self.p.steps):
            yield from self.step()
        elapsed = self.comm.engine.now - t0
        return elapsed, self.x.local.copy()


@dataclass
class GrayScottResult:
    nprocs: int
    backend: str
    config_name: str
    time_per_step: float
    v_mass: float          # total v: pattern growth indicator
    state: np.ndarray      # full assembled global state (checks/plots)


def gray_scott_benchmark(
    nprocs: int,
    backend: str = "datatype",
    config: Optional[MPIConfig] = None,
    params: Optional[GrayScottParams] = None,
    cost: Optional[CostModel] = None,
    seed: int = 0,
) -> GrayScottResult:
    config = config or MPIConfig.optimized()
    params = params or GrayScottParams()
    cluster = Cluster(nprocs, config=config, cost=cost, seed=seed)

    def main(comm):
        sim = GrayScott(comm, params, backend=backend)
        elapsed, local = yield from sim.run()
        return elapsed, local

    outcomes = cluster.run(main)
    elapsed = max(t for t, _ in outcomes)
    state = np.concatenate([part for _, part in outcomes])
    v_mass = float(state.reshape(-1, 2)[:, 1].sum())
    return GrayScottResult(
        nprocs, backend, config.name, elapsed / params.steps, v_mass, state
    )
