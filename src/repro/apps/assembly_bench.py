"""Repeated sparse Vec assembly: discovery cost vs plan reuse.

The PETSc pattern behind ``VecSetValues``/``VecAssemblyBegin``: every
rank contributes entries to a handful of *other* ranks' rows (a halo),
and the same sparsity pattern repeats every time step.  Three strategies
are compared over ``rounds`` identical assemblies:

- ``dense discovery``  : every round rediscovers the pattern with the
  dense counts-alltoall protocol (the baseline MPI configuration's
  ``mpich`` policy selects it),
- ``NBX discovery``    : every round rediscovers with the nonblocking
  consensus (the optimised configuration's ``adaptive`` policy),
- ``NBX + plan``       : ``VEC_SUBSET_OFF_PROC_ENTRIES`` -- one NBX
  discovery, then guarded cached point-to-point for every later round.

Discovery costs a full membership agreement per round (counts exchange
or consensus barrier); the cached plan replaces it with one fingerprint
agreement plus exactly the data messages, so its advantage grows with
the number of rounds the pattern is reused.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi import Cluster, MPIConfig
from repro.petsc import Layout, Vec
from repro.prof import Profiler

#: vector entries owned by each process (weak scaling)
PER_PROCESS = 256

#: off-rank peers each rank scatters entries into
PEERS = 2

#: entries contributed per peer per assembly round
PER_PEER = 8


@dataclass
class AssemblyResult:
    nprocs: int
    strategy: str
    rounds: int
    latency: float        # simulated seconds, all rounds
    messages: int         # messages put on the wire, all rounds
    checksum: float       # global sum after the last round (correctness)


def _targets(rank: int, nprocs: int) -> np.ndarray:
    """The global indices rank contributes to: PER_PEER spread-out slots
    in each of PEERS successor blocks."""
    idx = []
    for k in range(1, PEERS + 1):
        peer = (rank + k) % nprocs
        base = peer * PER_PROCESS
        idx.extend(base + np.arange(PER_PEER) * (PER_PROCESS // PER_PEER))
    return np.unique(np.asarray(idx, dtype=np.int64))


def run_assembly(nprocs: int, strategy: str,
                 rounds: int = 8) -> AssemblyResult:
    """Run ``rounds`` identical-pattern assemblies under ``strategy``
    (``dense`` / ``nbx`` / ``plan``)."""
    config = MPIConfig.baseline() if strategy == "dense" \
        else MPIConfig.optimized()
    cluster = Cluster(nprocs, config=config, heterogeneous=False)
    Profiler.attach(cluster)

    def main(comm):
        lay = Layout(comm.size, nprocs * PER_PROCESS)
        v = Vec(comm, lay)
        if strategy == "plan":
            v.set_option("subset_off_proc_entries")
        idx = _targets(comm.rank, comm.size)
        yield from comm.barrier()
        start = comm.engine.now
        for rnd in range(rounds):
            vals = np.full(idx.size, float(comm.rank + 1) * (rnd + 1))
            v.set_values(idx, vals, mode="add")
            yield from v.assemble()
        elapsed = comm.engine.now - start
        total = yield from v.sum()
        return elapsed, total

    outcomes = cluster.run(main)
    latency = float(np.mean([t for t, _ in outcomes]))
    return AssemblyResult(
        nprocs=nprocs, strategy=strategy, rounds=rounds, latency=latency,
        messages=int(cluster.net.messages_on_wire),
        checksum=float(outcomes[0][1]),
    )
