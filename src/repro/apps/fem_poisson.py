"""Parallel P1 finite-element Poisson solver on an unstructured mesh.

The paper's Fig. 2 shows ghost regions for *unstructured* grids as well as
structured ones; this application exercises that side of PETSc:

- a triangulated unit square (every structured cell split into two
  triangles -- topologically unstructured: assembly sees only
  element -> node connectivity, never i/j structure),
- **elements partitioned by strips**, so interface nodes are shared
  between ranks: each rank computes element stiffness contributions for
  *its* elements and stashes entries for rows it does not own --
  :class:`repro.petsc.aij.AIJMat`'s off-rank assembly protocol carries
  them, exactly like ``MatSetValues`` in a real PETSc FEM code,
- the right-hand side assembles through ``Vec.set_values(mode='add')``
  with the same owner-stash pattern,
- homogeneous Dirichlet conditions (boundary nodes eliminated from the
  unknown set), solved with CG + block-Jacobi.

The manufactured solution ``u = sin(pi x) sin(pi y)`` gives
``f = 2 pi^2 u`` and an O(h^2) nodal error, so the test suite can verify
the convergence *order*, not just "it runs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.mpi import Cluster, MPIConfig, RankFailedError
from repro.petsc import CG, BlockJacobiPC, Layout, SolverCheckpoint, Vec
from repro.petsc.aij import AIJMat
from repro.util.costmodel import CostModel

#: flops per element for the 3x3 stiffness computation
FLOPS_PER_ELEMENT = 60.0


def triangulate(nx: int, ny: int):
    """(coords, triangles): a structured triangulation of the unit square.

    ``coords[k] = (x, y)`` for node k (row-major, (ny+1) x (nx+1) nodes);
    each cell is split along its main diagonal into two triangles.
    """
    xs = np.linspace(0.0, 1.0, nx + 1)
    ys = np.linspace(0.0, 1.0, ny + 1)
    X, Y = np.meshgrid(xs, ys, indexing="xy")
    coords = np.stack([X.reshape(-1), Y.reshape(-1)], axis=1)

    j, i = np.meshgrid(np.arange(nx), np.arange(ny), indexing="xy")
    n00 = (i * (nx + 1) + j).reshape(-1)
    n10 = n00 + 1
    n01 = n00 + (nx + 1)
    n11 = n01 + 1
    lower = np.stack([n00, n10, n11], axis=1)
    upper = np.stack([n00, n11, n01], axis=1)
    triangles = np.concatenate([lower, upper], axis=0)
    return coords, triangles


def element_stiffness(coords: np.ndarray, tris: np.ndarray):
    """Vectorised P1 stiffness matrices and areas for many triangles.

    Returns ``(K, area)`` with ``K`` of shape (nelem, 3, 3):
    ``K = (b b^T + c c^T) / (4 A)`` with the usual shape-gradient
    coefficients.
    """
    p = coords[tris]  # (nelem, 3, 2)
    x = p[:, :, 0]
    y = p[:, :, 1]
    b = np.stack([y[:, 1] - y[:, 2], y[:, 2] - y[:, 0], y[:, 0] - y[:, 1]], axis=1)
    c = np.stack([x[:, 2] - x[:, 1], x[:, 0] - x[:, 2], x[:, 1] - x[:, 0]], axis=1)
    area = 0.5 * (
        (x[:, 1] - x[:, 0]) * (y[:, 2] - y[:, 0])
        - (x[:, 2] - x[:, 0]) * (y[:, 1] - y[:, 0])
    )
    K = (
        b[:, :, None] * b[:, None, :] + c[:, :, None] * c[:, None, :]
    ) / (4.0 * area)[:, None, None]
    return K, area


@dataclass
class FEMResult:
    nprocs: int
    n: int
    iterations: int
    error_max: float
    converged: bool
    simulated_time: float


def _interior_numbering(nx: int, ny: int):
    """Map node id -> unknown id (-1 for boundary nodes)."""
    unknown = -np.ones((ny + 1) * (nx + 1), dtype=np.int64)
    count = 0
    for i in range(1, ny):
        for j in range(1, nx):
            unknown[i * (nx + 1) + j] = count
            count += 1
    return unknown, count


def solve_poisson_fem(
    nprocs: int,
    n: int = 16,
    backend: str = "datatype",
    config: Optional[MPIConfig] = None,
    cost: Optional[CostModel] = None,
    rtol: float = 1e-10,
    seed: int = 0,
    fault_plan: Optional[Any] = None,
    observe: Optional[Callable[[Cluster], None]] = None,
    checkpoint_every: int = 0,
) -> FEMResult:
    """Assemble and solve on an ``n x n`` triangulated square.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) injects faults into
    the run; ``observe`` is called with the freshly built cluster before
    any rank runs (the chaos harness attaches profilers through it);
    ``checkpoint_every`` > 0 enables CG checkpoint/restart
    (:class:`repro.petsc.checkpoint.SolverCheckpoint`) so an injected rank
    failure during the solve can be recovered by shrinking the
    communicator and restarting from the last checkpointed iterate.
    """
    config = config or MPIConfig.optimized()
    cluster = Cluster(nprocs, config=config, cost=cost, seed=seed,
                      fault_plan=fault_plan)
    if observe is not None:
        observe(cluster)
    coords, triangles = triangulate(n, n)
    unknown, nunknowns = _interior_numbering(n, n)
    nelem = len(triangles)

    def assemble_system(comm, lay):
        """Assemble the stiffness matrix and rhs over ``comm``'s layout.

        All problem inputs (``coords``, ``triangles``) are replicated, so
        reassembly after a communicator shrink needs no data from the
        failed rank.
        """
        A = AIJMat(comm, lay)
        b = Vec(comm, lay)

        # strip partition of the ELEMENTS (not the unknowns): interface
        # rows are assembled by several ranks -> off-rank stashes
        e0 = nelem * comm.rank // comm.size
        e1 = nelem * (comm.rank + 1) // comm.size
        tris = triangles[e0:e1]
        K, area = element_stiffness(coords, tris)
        centroids = coords[tris].mean(axis=1)
        f = 2.0 * np.pi**2 * np.sin(np.pi * centroids[:, 0]) \
            * np.sin(np.pi * centroids[:, 1])

        u_ids = unknown[tris]  # (nelem_local, 3); -1 = boundary
        for a_local in range(3):
            rows = u_ids[:, a_local]
            keep_row = rows >= 0
            # rhs: one-point quadrature, each vertex gets area/3
            b.set_values(
                rows[keep_row],
                (area * f / 3.0)[keep_row],
                mode="add",
            )
            for b_local in range(3):
                cols = u_ids[:, b_local]
                keep = keep_row & (cols >= 0)
                A.set_values(rows[keep], cols[keep], K[:, a_local, b_local][keep])
        yield from comm.cpu(len(tris) * comm.cost.flop * FLOPS_PER_ELEMENT)
        yield from A.assemble(backend=backend)
        yield from b.assemble()
        return A, b

    def main(comm):
        ckpt = SolverCheckpoint(checkpoint_every) if checkpoint_every > 0 \
            else None
        while True:
            try:
                lay = Layout(comm.size, nunknowns)
                A, b = yield from assemble_system(comm, lay)
                x = Vec(comm, lay)
                if ckpt is not None:
                    ckpt.restore(x)  # warm start after a failure
                pc = BlockJacobiPC(A)
                result = yield from CG(A, b, x, rtol=rtol, maxits=1000,
                                       pc=pc, checkpoint=ckpt)
            except RankFailedError:
                if ckpt is None:
                    raise
                # recovery: shrink to the survivor group, reassemble over
                # the new layout, restart from the last checkpoint
                comm = yield from comm.shrink()
                continue
            break

        # nodal error against the manufactured solution
        start, end = lay.start(comm.rank), lay.end(comm.rank)
        err = 0.0
        if end > start:
            mask = (unknown >= start) & (unknown < end)
            node_xy = coords[mask]
            exact = np.sin(np.pi * node_xy[:, 0]) * np.sin(np.pi * node_xy[:, 1])
            order = np.argsort(unknown[mask])
            err = float(np.max(np.abs(x.local - exact[order])))
        err = yield from comm.allreduce(err, op=max)
        return result, err

    if fault_plan is not None:
        outcomes = cluster.run(main, return_exceptions=True)
        survivors = [o for o in outcomes
                     if not isinstance(o, BaseException)]
        if not survivors:
            raise next(o for o in outcomes if isinstance(o, BaseException))
        result, err = survivors[0]
    else:
        outcomes = cluster.run(main)
        result, err = outcomes[0]
    return FEMResult(
        nprocs=nprocs,
        n=n,
        iterations=result.iterations,
        error_max=err,
        converged=result.converged,
        simulated_time=cluster.elapsed,
    )
