"""The nearest-neighbour Alltoallw microbenchmark (section 5.3, Fig. 15).

Processes form a logical ring; each exchanges a 10x10 matrix of doubles
with its successor and predecessor and *nothing* with anyone else.  The
paper ran this across its two heterogeneous clusters without adding
artificial skew -- "some skew is bound to be present"; runs that straddle
both simulated clusters (> 32 ranks) are heterogeneous here too, matching
the jump in baseline latency past 32 processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datatypes import DOUBLE, TypedBuffer
from repro.mpi import Cluster, MPIConfig
from repro.util.costmodel import CostModel

MATRIX_DOUBLES = 100  # a 10x10 matrix of doubles


@dataclass
class AlltoallwResult:
    nprocs: int
    latency: float
    correct: bool


def alltoallw_ring_benchmark(
    nprocs: int,
    config: MPIConfig,
    cost: Optional[CostModel] = None,
    seed: int = 0,
    repeats: int = 1,
    heterogeneous: Optional[bool] = None,
) -> AlltoallwResult:
    cluster = Cluster(
        nprocs, config=config, cost=cost, seed=seed, heterogeneous=heterogeneous
    )
    n = nprocs
    checks = []

    def main(comm):
        succ = (comm.rank + 1) % n
        pred = (comm.rank - 1) % n
        sendbuf = np.full((n, MATRIX_DOUBLES), float(comm.rank))
        recvbuf = np.zeros((n, MATRIX_DOUBLES))
        sendspecs = [None] * n
        recvspecs = [None] * n
        for peer in {succ, pred}:
            off = peer * MATRIX_DOUBLES * 8
            sendspecs[peer] = TypedBuffer(sendbuf, DOUBLE, MATRIX_DOUBLES, offset_bytes=off)
            recvspecs[peer] = TypedBuffer(recvbuf, DOUBLE, MATRIX_DOUBLES, offset_bytes=off)
        yield from comm.barrier()
        start = comm.engine.now
        for _ in range(repeats):
            yield from comm.alltoallw(sendspecs, recvspecs)
        elapsed = (comm.engine.now - start) / repeats
        checks.append((comm.rank, recvbuf))
        return elapsed

    latencies = cluster.run(main)
    correct = True
    for rank, recvbuf in checks:
        succ, pred = (rank + 1) % n, (rank - 1) % n
        if not (np.all(recvbuf[succ] == succ) and np.all(recvbuf[pred] == pred)):
            correct = False
    return AlltoallwResult(nprocs, float(np.mean(latencies)), correct)
