"""repro: a laptop-scale reproduction of "Nonuniformly Communicating
Noncontiguous Data: A Case Study with PETSc and MPI" (Balaji et al.,
IPDPS 2007).

Layers (see README.md and DESIGN.md):

- :mod:`repro.simtime` -- deterministic discrete-event cluster simulator,
- :mod:`repro.datatypes` -- MPI derived datatypes and the two pack engines
  the paper compares (single-context vs dual-context look-ahead),
- :mod:`repro.mpi` -- the message-passing library: point-to-point,
  collectives (including the paper's adaptive Allgatherv and binned
  Alltoallw), communicators, RMA, MPI-IO, tracing,
- :mod:`repro.petsc` -- the PETSc-like toolkit (Vec/IS/VecScatter/DMDA/
  Mat/KSP/PC/MG/SNES/TS),
- :mod:`repro.apps` -- the paper's evaluation workloads plus extensions,
- :mod:`repro.bench` -- the figure-regeneration harness
  (``python -m repro.bench``).
"""

__version__ = "1.0.0"
