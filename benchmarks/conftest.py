"""Shared helpers for the figure benchmarks.

Each figure benchmark runs its full sweep exactly once (the measured
quantity is *simulated* time; pytest-benchmark's wall-clock statistics are
only meaningful for the kernel benchmarks), prints the paper-style table,
and asserts the shape targets from DESIGN.md section 4.
"""

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under pytest-benchmark and return its
    result (pedantic mode: one round, one iteration)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
