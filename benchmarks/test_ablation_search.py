"""Ablation of section 4.1's claim: baseline search time grows
quadratically with datatype size; the dual-context engine's look-ahead cost
is linear (constant per pipeline stage)."""

import numpy as np

from conftest import run_once

from repro.bench.harness import FigureData, print_figure
from repro.datatypes import DOUBLE, DualContextEngine, SingleContextEngine, Vector
from repro.util import CostModel

COST = CostModel(cpu_noise=0.0)


def sweep():
    fig = FigureData(
        "Ablation-4.1", "Datatype-processing CPU time vs block count (usec)",
        ["blocks", "single-ctx search", "dual-ctx lookahead", "pack (both)"],
    )
    # sizes start well past one pipeline chunk (2048 blocks) so every point
    # has a non-zero search term and the asymptotic exponent is visible
    for nblocks in (16_000, 32_000, 64_000, 128_000, 256_000):
        dt = Vector(nblocks, 1, 2, DOUBLE)
        stages_s = SingleContextEngine(dt.flatten(), COST).plan()
        stages_d = DualContextEngine(dt.flatten(), COST).plan()
        fig.add_row(
            nblocks,
            sum(s.search_s for s in stages_s) * 1e6,
            sum(s.lookahead_s for s in stages_d) * 1e6,
            sum(s.pack_s for s in stages_d) * 1e6,
        )
    return fig


def test_search_quadratic_vs_linear(benchmark):
    fig = run_once(benchmark, sweep)
    print_figure(fig)
    blocks = np.array(fig.column("blocks"), dtype=float)
    search = np.array(fig.column("single-ctx search"))
    look = np.array(fig.column("dual-ctx lookahead"))
    # fit growth exponents on log-log: search ~ quadratic, look-ahead ~ linear
    exp_search = np.polyfit(np.log(blocks), np.log(search), 1)[0]
    exp_look = np.polyfit(np.log(blocks), np.log(look), 1)[0]
    assert 1.8 < exp_search < 2.2, exp_search
    assert 0.8 < exp_look < 1.2, exp_look
