"""Wall-clock kernel benchmarks (true pytest-benchmark measurements).

These measure the *implementation's* hot paths -- the vectorised pack
engine, datatype flattening, Floyd-Rivest selection and the event engine --
rather than simulated time.
"""

import random

import numpy as np
import pytest

from repro.datatypes import DOUBLE, Contiguous, Resized, TypedBuffer, Vector
from repro.simtime import Delay, Engine
from repro.util import k_select


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(0).random((512, 512))


def test_pack_column_major_512(benchmark, matrix):
    column = Vector(512, 1, 512, DOUBLE)
    dt = Contiguous(512, Resized(column, DOUBLE.extent))
    tb = TypedBuffer(matrix, dt)
    tb.pack()  # build the gather index outside the timed region
    packed = benchmark(tb.pack)
    assert packed.size == matrix.nbytes


def test_unpack_column_major_512(benchmark, matrix):
    column = Vector(512, 1, 512, DOUBLE)
    dt = Contiguous(512, Resized(column, DOUBLE.extent))
    out = np.zeros_like(matrix)
    tb = TypedBuffer(out, dt)
    data = TypedBuffer(matrix, dt).pack()
    benchmark(tb.unpack, data)
    assert np.array_equal(out, matrix)


def test_flatten_million_block_type(benchmark):
    def build():
        column = Vector(1024, 1, 1024, DOUBLE)
        dt = Contiguous(1024, Resized(column, DOUBLE.extent))
        return dt.flatten().num_blocks

    nblocks = benchmark(build)
    assert nblocks == 1024 * 1024


def test_kselect_100k(benchmark):
    rng = random.Random(7)
    data = [rng.randrange(10**9) for _ in range(100_000)]
    result = benchmark(k_select, data, 50_000)
    assert result == sorted(data)[49_999]


def test_aij_spmv_kernel(benchmark):
    """Wall time of a distributed AIJ matvec (4 ranks, 2-D Laplacian)."""
    from repro.mpi import Cluster, MPIConfig
    from repro.petsc import Layout, Vec
    from repro.petsc.aij import AIJMat
    from repro.util import CostModel

    m = 64
    n = m * m

    def run():
        cluster = Cluster(4, config=MPIConfig.optimized(),
                          cost=CostModel(cpu_noise=0.0), heterogeneous=False)

        def main(comm):
            lay = Layout(comm.size, n)
            A = AIJMat(comm, lay)
            start, end = lay.start(comm.rank), lay.end(comm.rank)
            for k in range(start, end):
                i, j = divmod(k, m)
                A.set_value(k, k, 4.0)
                for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    ni, nj = i + di, j + dj
                    if 0 <= ni < m and 0 <= nj < m:
                        A.set_value(k, ni * m + nj, -1.0)
            yield from A.assemble()
            x = Vec(comm, lay)
            y = Vec(comm, lay)
            x.local[:] = 1.0
            for _ in range(10):
                yield from A.mult(x, y)
            return float(y.local.sum())

        return sum(cluster.run(main))

    total = benchmark(run)
    # interior rows sum to 0; boundary rows leave a positive residue
    assert total > 0


def test_event_engine_throughput(benchmark):
    """Time 100k Delay events through the scheduler."""

    def run():
        eng = Engine()

        def proc():
            for _ in range(100_000):
                yield Delay(1.0)

        eng.spawn(proc())
        eng.run()
        return eng.now

    assert benchmark(run) == 100_000.0
