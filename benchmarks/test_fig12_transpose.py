"""Fig. 12: matrix-transpose latency, baseline vs optimised datatype engine.

Paper shape: the baseline grows much faster with matrix size than the
optimised implementation; at 1024x1024 the optimisation gives over 85%
improvement, and the gap keeps widening.
"""

from conftest import run_once

from repro.bench import figures, print_figure


def test_fig12_transpose(benchmark):
    fig = run_once(benchmark, figures.fig12)
    print_figure(fig)
    impr = fig.column("improvement %")
    sizes = fig.column("matrix")
    by_size = dict(zip(sizes, impr))
    # improvement grows monotonically with matrix size
    assert all(b >= a for a, b in zip(impr, impr[1:])), impr
    # paper: >85% at 1024x1024
    assert by_size["1024x1024"] > 85.0
    # baseline grows super-linearly: 4x the size -> much more than 4x the time
    base = fig.column("MVAPICH2-0.9.5")
    assert base[-1] / base[-3] > 16  # 256 -> 1024 is 16x the elements
    # the optimised engine stays roughly linear in the payload
    opt = fig.column("MVAPICH2-New")
    assert opt[-1] / opt[-3] < 32
