"""Fig. 17: the 3-D Laplacian multigrid solver application, 100^3 grid,
three levels, up to 128 processes.

Paper shape: the optimised implementation keeps scaling to 128 processes
while the baseline *stops scaling past 32* (its execution time starts
rising again); improvement approaches ~90% at 128.  Hand-tuned is ~10%
ahead of the optimised path at 4 processes, shrinking to under a few
percent at 128.

This is the most expensive benchmark in the suite (a couple of minutes of
wall time for the 128-rank baseline point).
"""

from conftest import run_once

from repro.bench import figures, print_figure


def test_fig17_multigrid(benchmark):
    fig = run_once(benchmark, figures.fig17)
    print_figure(fig)
    procs = fig.column("procs")
    hand = dict(zip(procs, fig.column("hand-tuned")))
    base = dict(zip(procs, fig.column("MVAPICH2-0.9.5")))
    opt = dict(zip(procs, fig.column("MVAPICH2-New")))
    # the baseline stops scaling: its 128-proc time exceeds its 32-proc time
    assert base[128] > base[32]
    # the optimised implementation keeps improving (or at least holds) as
    # the machine grows beyond one cluster
    assert opt[128] < opt[32] * 1.10
    # headline: large improvement at 128 processes
    impr_128 = (1 - opt[128] / base[128]) * 100
    assert impr_128 > 50.0, impr_128
    # improvement grows with scale
    impr = [(1 - o / b) * 100 for o, b in zip(
        fig.column("MVAPICH2-New"), fig.column("MVAPICH2-0.9.5"))]
    assert impr[-1] > impr[0]
    # hand-tuned stays only a few percent ahead of the optimised datatype
    # path at every scale (the paper's "may be a desirable trade-off"
    # argument; see EXPERIMENTS.md for the small shape deviation in how the
    # gap evolves with scale)
    for p in procs:
        gap = (opt[p] - hand[p]) / opt[p]
        assert -0.02 <= gap < 0.10, (p, gap)
