"""Fig. 14: MPI_Allgatherv with one outlier contribution.

Paper shape: (a) with 64 processes, the baseline's latency grows faster
with rank 0's message size than the optimised implementation's; (b) at a
fixed 32 KB outlier, the baseline grows faster with the number of
processes (the ring serialises the big block over N-1 hops, the adaptive
algorithm moves it along a binomial tree).
"""

from conftest import run_once

from repro.bench import figures, print_figure


def test_fig14a_varying_problem_size(benchmark):
    fig = run_once(benchmark, figures.fig14a)
    print_figure(fig)
    base = fig.column("MVAPICH2-0.9.5")
    opt = fig.column("MVAPICH2-New")
    # below the long-message threshold the two configurations coincide
    assert base[0] == opt[0]
    # once the ring regime is reached the optimisation wins decisively
    assert fig.column("improvement %")[-1] > 50.0
    # the baseline's growth from 4K to 16K doubles is ~4x (linear in the
    # outlier), and the optimised path grows no faster
    assert base[-1] / base[-2] > 3.0
    assert opt[-1] / opt[-2] <= base[-1] / base[-2] + 0.5


def test_fig14b_varying_system_size(benchmark):
    fig = run_once(benchmark, figures.fig14b)
    print_figure(fig)
    base = fig.column("MVAPICH2-0.9.5")
    opt = fig.column("MVAPICH2-New")
    procs = fig.column("procs")
    # baseline scales ~linearly with N (ring: N-1 hops for the big block)
    ratio_base = base[-1] / base[-3]  # 16 -> 64 procs
    assert ratio_base > 3.0
    # optimised scales ~logarithmically
    ratio_opt = opt[-1] / opt[-3]
    assert ratio_opt < 2.0
    # paper: clear improvement at 64 procs / 32 KB
    impr = dict(zip(procs, fig.column("improvement %")))
    assert impr[64] > 20.0
    # improvement grows with system size
    vals = fig.column("improvement %")
    assert all(b >= a - 1e-9 for a, b in zip(vals[1:], vals[2:])), vals
