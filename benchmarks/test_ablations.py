"""Per-optimisation ablations: each of the paper's three designs toggled
independently on the workload it targets (DESIGN.md section 4)."""

from conftest import run_once

from repro.apps.allgatherv_bench import allgatherv_benchmark
from repro.apps.alltoallw_bench import alltoallw_ring_benchmark
from repro.apps.transpose import transpose_benchmark
from repro.bench.harness import FigureData, print_figure
from repro.mpi import MPIConfig

BASE = MPIConfig.baseline()


def sweep():
    fig = FigureData(
        "Ablations", "Per-optimisation latency on its target workload (usec)",
        ["optimisation", "workload", "off", "on", "improvement %"],
    )

    # 4.1 dual-context engine on the 512x512 transpose
    off = transpose_benchmark(512, BASE).latency
    on = transpose_benchmark(512, BASE.with_(dual_context_engine=True)).latency
    fig.add_row("dual-context engine", "transpose 512^2",
                off * 1e6, on * 1e6, (1 - on / off) * 100)

    # 4.2.1 adaptive allgatherv on the 32KB-outlier workload, 64 procs
    off = allgatherv_benchmark(64, 4096, BASE).latency
    on = allgatherv_benchmark(64, 4096, BASE.with_(adaptive_allgatherv=True)).latency
    fig.add_row("adaptive allgatherv", "outlier 32KB@64p",
                off * 1e6, on * 1e6, (1 - on / off) * 100)

    # 4.2.2 binned alltoallw on the ring-neighbour workload, 64 procs
    off = alltoallw_ring_benchmark(64, BASE).latency
    on = alltoallw_ring_benchmark(64, BASE.with_(binned_alltoallw=True)).latency
    fig.add_row("binned alltoallw", "ring neighbours@64p",
                off * 1e6, on * 1e6, (1 - on / off) * 100)
    return fig


def test_each_optimisation_helps_its_workload(benchmark):
    fig = run_once(benchmark, sweep)
    print_figure(fig)
    for row in fig.rows:
        name, _workload, off, on, impr = row
        assert impr > 20.0, (name, impr)


def test_optimisations_do_not_interfere(benchmark):
    """All three together on the alltoallw workload: at least as good as
    binning alone (the other toggles must not regress it)."""

    def run():
        alone = alltoallw_ring_benchmark(
            32, BASE.with_(binned_alltoallw=True)
        ).latency
        full = alltoallw_ring_benchmark(32, MPIConfig.optimized()).latency
        return alone, full

    alone, full = run_once(benchmark, run)
    assert full <= alone * 1.05
