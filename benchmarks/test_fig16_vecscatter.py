"""Fig. 16: the PETSc vector-scatter benchmark (three implementations).

Paper shape: at scale the optimised-MPI datatype path improves on the
baseline MPI by >95% (we reproduce >90%), and the hand-tuned implementation
stays slightly (a few percent) ahead of the optimised datatype path --
the paper's argument that MPI datatypes + collectives become a viable,
simpler alternative once the MPI library handles nonuniformity well.
"""

from conftest import run_once

from repro.bench import figures, print_figure


def test_fig16_vecscatter(benchmark):
    fig = run_once(benchmark, figures.fig16)
    print_figure(fig)
    procs = fig.column("procs")
    hand = dict(zip(procs, fig.column("hand-tuned")))
    base = dict(zip(procs, fig.column("MVAPICH2-0.9.5")))
    opt = dict(zip(procs, fig.column("MVAPICH2-New")))
    impr = dict(zip(procs, fig.column("new improvement %")))
    # paper: >95% at 128 procs; we require >90%
    assert impr[128] > 90.0
    # improvement grows with system size
    vals = fig.column("new improvement %")
    assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:])), vals
    # hand-tuned beats the optimised datatype path by only a few percent
    for p in procs:
        gap = (opt[p] - hand[p]) / opt[p] * 100.0
        assert 0.0 <= gap < 10.0, (p, gap)
    # the baseline is the clear loser at scale
    assert base[128] > 5 * opt[128]
