"""PETSc-level consequence of the adaptive Allgatherv (section 4.2.1):
``Vec.gather_to_all`` with an unbalanced layout.

When one rank owns most of a vector (common after adaptive refinement or
boundary-heavy layouts), gathering it everywhere is exactly the
one-big-contribution Allgatherv of Fig. 14 -- the baseline ring serialises
the big block, the adaptive algorithm does not."""

import numpy as np

from conftest import run_once

from repro.bench.harness import FigureData, improvement, print_figure
from repro.mpi import Cluster, MPIConfig
from repro.petsc import Layout, Vec
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def gather_latency(nprocs: int, config, skewed: bool) -> float:
    big = 8192
    small = 16
    if skewed:
        sizes = [big] + [small] * (nprocs - 1)
    else:
        total = big + small * (nprocs - 1)
        base = total // nprocs
        sizes = [base + (1 if r < total % nprocs else 0) for r in range(nprocs)]
    gsize = sum(sizes)
    cluster = Cluster(nprocs, config=config, cost=QUIET, heterogeneous=False)

    def main(comm):
        v = Vec(comm, Layout(comm.size, gsize, sizes))
        start, end = v.owned_range
        v.local[:] = np.arange(start, end, dtype=np.float64)
        yield from comm.barrier()
        t0 = comm.engine.now
        full = yield from v.gather_to_all()
        elapsed = comm.engine.now - t0
        assert np.array_equal(full, np.arange(gsize, dtype=np.float64))
        return elapsed

    return max(cluster.run(main))


def sweep():
    fig = FigureData(
        "GatherToAll", "Vec.gather_to_all latency, unbalanced layout (usec)",
        ["procs", "MVAPICH2-0.9.5", "MVAPICH2-New", "improvement %",
         "balanced baseline"],
    )
    for p in (4, 8, 16, 32, 64):
        tb = gather_latency(p, MPIConfig.baseline(), skewed=True)
        to = gather_latency(p, MPIConfig.optimized(), skewed=True)
        tflat = gather_latency(p, MPIConfig.baseline(), skewed=False)
        fig.add_row(p, tb * 1e6, to * 1e6, improvement(tb, to), tflat * 1e6)
    return fig


def test_gather_to_all_unbalanced(benchmark):
    fig = run_once(benchmark, sweep)
    print_figure(fig)
    impr = fig.column("improvement %")
    assert impr[-1] > 50.0
    assert all(b >= a - 1e-9 for a, b in zip(impr, impr[1:]))
    # with a balanced layout the two configurations behave alike, so the
    # baseline's unbalanced latency should far exceed its balanced one
    base = fig.column("MVAPICH2-0.9.5")
    flat = fig.column("balanced baseline")
    assert base[-1] > 2 * flat[-1]
