"""Sensitivity studies over the design parameters DESIGN.md calls out:
pipeline chunk size, look-ahead depth, eager threshold and machine
heterogeneity.  These are the knobs a real MPI implementation tunes; the
sweeps confirm the reproduced behaviours are robust, not knife-edge."""

from conftest import run_once

from repro.apps.alltoallw_bench import alltoallw_ring_benchmark
from repro.apps.transpose import transpose_benchmark
from repro.bench.harness import FigureData, improvement, print_figure
from repro.mpi import MPIConfig
from repro.util import CostModel

BASE = MPIConfig.baseline()
OPT = MPIConfig.optimized()


def pipeline_chunk_sweep():
    fig = FigureData(
        "Chunk", "512^2 transpose vs pipeline chunk size (ms)",
        ["chunk KB", "baseline", "optimized", "improvement %"],
    )
    for kb in (4, 8, 16, 32, 64):
        cost = CostModel(pipeline_chunk=kb * 1024)
        rb = transpose_benchmark(512, BASE, cost=cost)
        ro = transpose_benchmark(512, OPT, cost=cost)
        fig.add_row(kb, rb.latency * 1e3, ro.latency * 1e3,
                    improvement(rb.latency, ro.latency))
    return fig


def test_pipeline_chunk_tradeoff(benchmark):
    """Smaller chunks mean more pipeline stages, hence more re-searches:
    the baseline's quadratic term grows as the chunk shrinks, while the
    optimised engine barely cares."""
    fig = run_once(benchmark, pipeline_chunk_sweep)
    print_figure(fig)
    base = fig.column("baseline")
    opt = fig.column("optimized")
    # baseline strictly improves with bigger chunks (fewer re-searches)
    assert all(b > a for a, b in zip(base[::-1], base[::-1][1:])), base
    # the optimised engine varies far less across the sweep
    assert max(opt) / min(opt) < 2.0
    assert max(base) / min(base) > 4.0
    # the optimisation helps at every chunk size
    assert all(v > 0 for v in fig.column("improvement %"))


def lookahead_depth_sweep():
    fig = FigureData(
        "Lookahead", "512^2 transpose vs look-ahead depth (optimized, ms)",
        ["depth", "optimized latency"],
    )
    for depth in (3, 15, 63, 255):
        cost = CostModel(lookahead_depth=depth)
        ro = transpose_benchmark(512, OPT, cost=cost)
        fig.add_row(depth, ro.latency * 1e3)
    return fig


def test_lookahead_depth_is_cheap(benchmark):
    """The paper: 'the amount of lookup needed is typically very small
    (e.g., 15 elements in the current design); thus this time is near
    constant.'  Varying the depth 3..255 must barely move the latency."""
    fig = run_once(benchmark, lookahead_depth_sweep)
    print_figure(fig)
    lat = fig.column("optimized latency")
    assert max(lat) / min(lat) < 1.25, lat


def eager_threshold_sweep():
    fig = FigureData(
        "Eager", "Alltoallw ring @32 procs vs eager threshold (usec)",
        ["threshold KB", "baseline", "optimized"],
    )
    for kb in (0, 1, 12, 64):
        cfg_b = BASE.with_(eager_threshold=kb * 1024)
        cfg_o = OPT.with_(eager_threshold=kb * 1024)
        rb = alltoallw_ring_benchmark(32, cfg_b)
        ro = alltoallw_ring_benchmark(32, cfg_o)
        fig.add_row(kb, rb.latency * 1e6, ro.latency * 1e6)
    return fig


def test_eager_threshold_sensitivity(benchmark):
    """With rendezvous everywhere (threshold 0) even the 800-byte neighbour
    messages must wait for their receives; the optimised path still wins at
    every threshold."""
    fig = run_once(benchmark, eager_threshold_sweep)
    print_figure(fig)
    base = fig.column("baseline")
    opt = fig.column("optimized")
    for b, o in zip(base, opt):
        assert o < b
    # rendezvous-everywhere is the slowest optimised point
    assert opt[0] >= max(opt[1:])


def heterogeneity_study():
    fig = FigureData(
        "Hetero", "Alltoallw ring @64 procs: homogeneous vs heterogeneous (usec)",
        ["machine", "baseline", "optimized", "improvement %"],
    )
    for label, hetero in (("homogeneous", False), ("heterogeneous", True)):
        rb = alltoallw_ring_benchmark(64, BASE, heterogeneous=hetero)
        ro = alltoallw_ring_benchmark(64, OPT, heterogeneous=hetero)
        fig.add_row(label, rb.latency * 1e6, ro.latency * 1e6,
                    improvement(rb.latency, ro.latency))
    return fig


def test_heterogeneity_amplifies_baseline_cost(benchmark):
    """The paper ran Fig. 15 across two different clusters and attributed
    part of the baseline's loss to the resulting skew: the zero-byte
    synchronisation chain picks it up, the binned implementation avoids it."""
    fig = run_once(benchmark, heterogeneity_study)
    print_figure(fig)
    base = fig.column("baseline")
    opt = fig.column("optimized")
    assert base[1] >= base[0]          # skew never helps the baseline
    assert opt[1] <= opt[0] * 1.5      # the optimised path barely reacts
    assert all(v > 80 for v in fig.column("improvement %"))
