"""Future-work study (paper section 7): FLASH-style AMR with load-balancing
skew, baseline vs optimised MPI across system sizes."""

from conftest import run_once

from repro.apps.amr_skew import AMRConfig, amr_skew_benchmark
from repro.bench.harness import FigureData, improvement, print_figure
from repro.mpi import MPIConfig


def sweep():
    fig = FigureData(
        "AMR", "FLASH-style AMR time per step (usec)",
        ["procs", "MVAPICH2-0.9.5", "MVAPICH2-New", "improvement %"],
    )
    params = AMRConfig(blocks_per_dim=8, steps=4)
    for p in (4, 8, 16, 32, 64):
        rb = amr_skew_benchmark(p, MPIConfig.baseline(), params=params)
        ro = amr_skew_benchmark(p, MPIConfig.optimized(), params=params)
        assert rb.correct and ro.correct
        fig.add_row(
            p, rb.time_per_step * 1e6, ro.time_per_step * 1e6,
            improvement(rb.time_per_step, ro.time_per_step),
        )
    return fig


def test_amr_skew_study(benchmark):
    fig = run_once(benchmark, sweep)
    print_figure(fig)
    impr = fig.column("improvement %")
    # the optimised stack wins, and by more at scale (sparser pattern)
    assert impr[-1] > impr[0]
    assert impr[-1] > 30.0
