"""Related-work study: zero-copy RDMA datatype communication.

The paper's related work ([19] Santhanaraman et al., [24] Wu et al.)
designs zero-copy MPI datatype transfers over InfiniBand RDMA; the core
trade-off is host-assisted packing (one message + target CPU scatter)
versus one RDMA operation per contiguous block (no target CPU, but
per-block initiation).  Sweeping the block size at fixed total payload
reproduces the crossover those papers measure.
"""

from conftest import run_once

import numpy as np

from repro.bench.harness import FigureData, print_figure
from repro.datatypes import DOUBLE, Vector
from repro.mpi import Cluster, MPIConfig
from repro.mpi.rma import Win
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)
TOTAL_DOUBLES = 8192  # 64 KB payload


def put_latency(nblocks: int, method: str) -> float:
    blocklen = TOTAL_DOUBLES // nblocks
    cluster = Cluster(2, config=MPIConfig.optimized(), cost=QUIET,
                      heterogeneous=False)

    def main(comm):
        local = np.zeros(TOTAL_DOUBLES * 2)
        win = yield from Win.create(comm, local)
        if comm.rank == 0:
            target = Vector(nblocks, blocklen, 2 * blocklen, DOUBLE)
            t0 = comm.engine.now
            yield from win.put(np.ones(TOTAL_DOUBLES), 1, target, 1, method=method)
            yield from win.fence()
            return comm.engine.now - t0
        yield from win.fence()
        return None

    return cluster.run(main)[0]


def sweep():
    fig = FigureData(
        "RMA", "64 KB noncontiguous put: pack vs zero-copy RDMA (usec)",
        ["blocks", "block bytes", "host-assisted pack", "multi-RDMA"],
    )
    for nblocks in (2, 8, 32, 128, 512, 2048, 8192):
        fig.add_row(
            nblocks, TOTAL_DOUBLES // nblocks * 8,
            put_latency(nblocks, "pack") * 1e6,
            put_latency(nblocks, "multi_rdma") * 1e6,
        )
    return fig


def test_rma_datatype_crossover(benchmark):
    fig = run_once(benchmark, sweep)
    print_figure(fig)
    pack = fig.column("host-assisted pack")
    rdma = fig.column("multi-RDMA")
    # zero-copy wins (or ties) for large blocks, loses badly for tiny ones
    assert rdma[0] <= pack[0] * 1.05
    assert rdma[-1] > 3 * pack[-1]
    # there is a crossover inside the sweep
    signs = [r > p for p, r in zip(pack, rdma)]
    assert signs[0] is False and signs[-1] is True
    # pack latency is nearly flat (payload-dominated); multi-RDMA grows
    # with the block count
    assert max(pack) / min(pack) < 3.0
    assert rdma[-1] / rdma[0] > 10.0
