"""Fig. 15: MPI_Alltoallw ring-neighbour exchange.

Paper shape: the baseline degrades linearly with system size (it posts
zero-byte messages to every non-partner, each a synchronisation step that
also picks up inter-cluster skew); the optimised binned implementation is
flat.  Paper numbers: ~50% improvement at 32 procs (one homogeneous
cluster), over 88% at 128 procs (both clusters, natural skew).
"""

from conftest import run_once

from repro.bench import figures, print_figure


def test_fig15_alltoallw(benchmark):
    fig = run_once(benchmark, figures.fig15)
    print_figure(fig)
    procs = fig.column("procs")
    base = dict(zip(procs, fig.column("MVAPICH2-0.9.5")))
    opt = dict(zip(procs, fig.column("MVAPICH2-New")))
    impr = dict(zip(procs, fig.column("improvement %")))
    # paper: ~50% at 32 procs, >88% at 128 procs
    assert impr[32] > 50.0
    assert impr[128] > 88.0
    # baseline grows roughly linearly with N
    assert base[128] / base[16] > 4.0
    # optimised stays flat: partners don't multiply with N
    assert opt[128] / opt[4] < 2.0
