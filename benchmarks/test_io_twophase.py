"""Two-phase collective IO study: independent vs collective writes as the
view granularity shrinks (ROMIO's classic result, built on the same
derived-datatype machinery as the paper's communication study)."""

import numpy as np

from conftest import run_once

from repro.bench.harness import FigureData, improvement, print_figure
from repro.datatypes import DOUBLE, Vector
from repro.mpi import Cluster, MPIConfig
from repro.mpi.io import File
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)
NRANKS = 8
TOTAL_DOUBLES_PER_RANK = 512


def write_time(interleave: int, collective: bool) -> float:
    """Each rank writes its doubles in runs of ``interleave`` elements,
    interleaved with the other ranks' runs."""
    cluster = Cluster(NRANKS, config=MPIConfig.optimized(), cost=QUIET,
                      heterogeneous=False)
    runs = TOTAL_DOUBLES_PER_RANK // interleave

    def main(comm):
        fh = yield from File.open(comm, "bench.bin")
        filetype = Vector(runs, interleave, comm.size * interleave, DOUBLE)
        fh.set_view(comm.rank * interleave * 8, filetype)
        payload = np.full(TOTAL_DOUBLES_PER_RANK, float(comm.rank))
        yield from comm.barrier()
        t0 = comm.engine.now
        if collective:
            yield from fh.write_all(payload)
        else:
            yield from fh.write(payload)
        elapsed = comm.engine.now - t0
        yield from fh.close()
        return elapsed

    return max(cluster.run(main))


def sweep():
    fig = FigureData(
        "TwoPhase", "8-rank interleaved file write (ms)",
        ["run doubles", "independent", "collective", "improvement %"],
    )
    for interleave in (512, 128, 32, 8, 2):
        ti = write_time(interleave, collective=False)
        tc = write_time(interleave, collective=True)
        fig.add_row(interleave, ti * 1e3, tc * 1e3, improvement(ti, tc))
    return fig


def test_two_phase_wins_for_fine_interleaves(benchmark):
    fig = run_once(benchmark, sweep)
    print_figure(fig)
    ind = fig.column("independent")
    col = fig.column("collective")
    # independent IO degrades as runs shrink (one op per run)
    assert ind[-1] > 10 * ind[0]
    # collective IO is nearly flat (always one chunk per rank)
    assert max(col) / min(col) < 2.0
    # and wins decisively at fine granularity
    assert col[-1] < ind[-1] / 10
