"""Section 4.2.1 claim: Floyd-Rivest k_select runs in linear time.

Measures wall time at doubling sizes and fits the growth exponent, and
verifies k_select beats full sorting for a single order statistic at scale.
"""

import random
import time

import numpy as np

from conftest import run_once

from repro.bench.harness import FigureData, print_figure
from repro.util import k_select


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def sweep():
    rng = random.Random(1)
    fig = FigureData(
        "kselect", "k_select wall time vs set size (ms)",
        ["n", "k_select", "sorted()[k]"],
    )
    for n in (50_000, 100_000, 200_000, 400_000):
        data = [rng.randrange(10**9) for _ in range(n)]
        k = n // 2
        t_sel = _time(lambda: k_select(data, k))
        t_sort = _time(lambda: sorted(data)[k - 1])
        fig.add_row(n, t_sel * 1e3, t_sort * 1e3)
    return fig


def test_kselect_linear_and_beats_sort(benchmark):
    fig = run_once(benchmark, sweep)
    print_figure(fig)
    n = np.array(fig.column("n"), dtype=float)
    t = np.array(fig.column("k_select"))
    exponent = np.polyfit(np.log(n), np.log(t), 1)[0]
    # linear growth (generous band: wall clocks are noisy)
    assert exponent < 1.5, exponent
    # selection beats a full sort at the largest size
    assert fig.column("k_select")[-1] < fig.column("sorted()[k]")[-1]
