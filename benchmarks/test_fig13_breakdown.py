"""Fig. 13: transpose time breakdown (comm / pack / search).

Paper shape: under the baseline engine the search share grows dramatically
with matrix size until it dominates; the dual-context engine eliminates the
search entirely, leaving communication (and packing) to dominate.
"""

from conftest import run_once

from repro.bench import figures, print_figure


def test_fig13_breakdown(benchmark):
    fig_a, fig_b = run_once(benchmark, figures.fig13)
    print_figure(fig_a)
    print_figure(fig_b)
    search_a = fig_a.column("search %")
    # baseline: search share strictly increases and ends dominant
    assert all(b > a for a, b in zip(search_a, search_a[1:])), search_a
    assert search_a[-1] > 80.0
    # optimised: no search time at any size
    search_b = fig_b.column("search %")
    assert all(s == 0.0 for s in search_b), search_b
    # optimised: communication is a large share at every size
    comm_b = fig_b.column("comm %")
    assert all(c > 30.0 for c in comm_b), comm_b
