"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, which
setuptools' PEP 660 editable-install path requires.  ``python setup.py
develop`` (or ``pip install -e . --no-build-isolation`` on machines that do
have ``wheel``) installs the package for development.
"""

from setuptools import setup

setup()
