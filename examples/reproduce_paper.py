#!/usr/bin/env python
"""Regenerate every figure of the paper's evaluation section.

Prints the series behind Figs. 12-17 as text tables.  The full sweep takes
several minutes (the 128-rank baseline multigrid run dominates); pass
``--quick`` for a reduced sweep.

Run:  python examples/reproduce_paper.py [--quick]
"""

import sys
import time

from repro.bench import figures, print_figure

if __name__ == "__main__":
    quick = "--quick" in sys.argv
    t0 = time.time()

    print_figure(figures.fig12())
    print()
    for fig in figures.fig13():
        print_figure(fig)
        print()
    print_figure(figures.fig14a())
    print()
    print_figure(figures.fig14b())
    print()
    print_figure(figures.fig15(procs=(2, 4, 8, 16, 32) if quick
                               else figures.FIG15_PROCS))
    print()
    print_figure(figures.fig16(procs=(2, 4, 8, 16) if quick
                               else figures.FIG16_PROCS))
    print()
    print_figure(figures.fig17(procs=(4, 8) if quick else figures.FIG17_PROCS,
                               grid=(48, 48, 48) if quick else (100, 100, 100)))
    print()
    print(f"total wall time: {time.time() - t0:.0f} s")
