#!/usr/bin/env python
"""Adaptive mesh refinement with load-balancing skew (paper section 7).

The paper's future-work section points at FLASH-style adaptive meshes: an
"area of interest" moves through the domain, blocks near it refine (4x the
work and data per level), and the work is re-balanced across ranks -- which
both skews the compute phases and makes every communication phase sparse
and nonuniform.

This example runs a compact version of that workload (see
``repro.apps.amr_skew``) and shows how ownership, refinement and the
communication pattern evolve -- and what the paper's optimisations buy.

Run:  python examples/amr_refinement.py
"""

import numpy as np

from repro.apps.amr_skew import AMRConfig, AMRDriver, amr_skew_benchmark
from repro.mpi import Cluster, MPIConfig

if __name__ == "__main__":
    params = AMRConfig(blocks_per_dim=8, steps=6)

    # -- visualise the refinement pattern at two times --------------------------
    cluster = Cluster(4, config=MPIConfig.optimized(), heterogeneous=False)

    def peek(comm):
        d = AMRDriver(comm, params)
        yield from comm.barrier()
        return [d.compute_levels(t) for t in (0, 3)], d.order

    (levels_list, order) = cluster.run(peek)[0]
    n = params.blocks_per_dim
    for t, levels in zip((0, 3), levels_list):
        grid = np.zeros((n, n), dtype=int)
        grid[order // n, order % n] = levels
        print(f"refinement levels at t={t}:")
        for row in grid[::-1]:
            print("   " + " ".join(str(v) for v in row))
        print()

    # -- and what the MPI optimisations do for it --------------------------------
    print("time per AMR step (migration + halo exchange + compute):")
    for nprocs in (8, 16, 32, 64):
        rb = amr_skew_benchmark(nprocs, MPIConfig.baseline(), params=params)
        ro = amr_skew_benchmark(nprocs, MPIConfig.optimized(), params=params)
        assert rb.correct and ro.correct
        print(f"  {nprocs:3d} procs: baseline {rb.time_per_step * 1e6:8.1f} us   "
              f"optimised {ro.time_per_step * 1e6:8.1f} us   "
              f"({(1 - ro.time_per_step / rb.time_per_step) * 100:4.1f}% better)")
