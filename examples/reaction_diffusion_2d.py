#!/usr/bin/env python
"""Gray-Scott reaction-diffusion with interlaced fields (paper section 2.1).

Runs the two-species pattern-forming system on a 64x64 periodic grid with
two degrees of freedom per point stored interlaced -- the PETSc layout the
paper describes ("pressure, temperature, x-velocity and y-velocity ...
stored interlaced in the PETSc vector").  Each time step's ghost exchange
therefore moves strided *pairs* of doubles.

Prints a coarse ASCII rendering of the v species and the per-step cost of
each implementation.

Run:  python examples/reaction_diffusion_2d.py
"""

import numpy as np

from repro.apps.reaction_diffusion import GrayScottParams, gray_scott_benchmark
from repro.mpi import MPIConfig

SHADES = " .:-=+*#%@"

if __name__ == "__main__":
    params = GrayScottParams(grid=(64, 64), steps=400)
    result = gray_scott_benchmark(4, params=params)
    v = result.state.reshape(-1, 2)[:, 1]

    # re-assemble PETSc-ordered rank blocks into the natural grid
    n = 64
    half = n // 2
    blocks = v.reshape(4, half, half)
    grid = np.zeros((n, n))
    grid[:half, :half] = blocks[0]
    grid[:half, half:] = blocks[1]
    grid[half:, :half] = blocks[2]
    grid[half:, half:] = blocks[3]

    coarse = grid.reshape(16, 4, 16, 4).mean(axis=(1, 3))
    vmax = coarse.max() or 1.0
    print(f"v species after {params.steps} steps (max {grid.max():.3f}):")
    for row in coarse:
        print("  " + "".join(SHADES[int(x / vmax * (len(SHADES) - 1))] for x in row))
    print()

    print("time per step:")
    quick = GrayScottParams(grid=(64, 64), steps=20)
    for label, backend, config in (
        ("hand-tuned", "hand_tuned", MPIConfig.baseline()),
        ("MVAPICH2-0.9.5", "datatype", MPIConfig.baseline()),
        ("MVAPICH2-New", "datatype", MPIConfig.optimized()),
    ):
        r = gray_scott_benchmark(16, backend=backend, config=config, params=quick)
        print(f"  {label:15s}: {r.time_per_step * 1e6:8.1f} us/step")
