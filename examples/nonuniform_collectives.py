#!/usr/bin/env python
"""Nonuniform-volume collectives (paper sections 4.2.1 / 4.2.2).

Part 1 -- MPI_Allgatherv with an outlier: rank 0 contributes 32 KB while
everyone else contributes 8 bytes.  Shows the outlier-ratio computation
(Eq. 1, via Floyd-Rivest k-select) and the latency of the ring algorithm
versus the adaptive choice.

Part 2 -- MPI_Alltoallw nearest-neighbour exchange: each rank talks only to
its ring neighbours.  Shows how the baseline's zero-byte round-robin decays
with system size while the binned implementation stays flat.

Run:  python examples/nonuniform_collectives.py
"""

import numpy as np

from repro.apps.allgatherv_bench import allgatherv_benchmark
from repro.apps.alltoallw_bench import alltoallw_ring_benchmark
from repro.mpi import MPIConfig
from repro.mpi.outlier import outlier_ratio
from repro.util import CostModel

if __name__ == "__main__":
    cost = CostModel()

    print("-- Part 1: Allgatherv with one 32 KB outlier --")
    volumes = [8] * 63 + [32 * 1024]
    ratio = outlier_ratio(volumes, cost.outlier_fraction)
    print(f"outlier ratio (Eq. 1) = {ratio:.0f} "
          f"(threshold {cost.outlier_ratio_threshold}) -> adapt algorithm")
    for nprocs in (16, 32, 64):
        rb = allgatherv_benchmark(nprocs, 4096, MPIConfig.baseline())
        ro = allgatherv_benchmark(nprocs, 4096, MPIConfig.optimized())
        print(f"  {nprocs:3d} procs: ring {rb.latency * 1e6:8.1f} us   "
              f"adaptive {ro.latency * 1e6:8.1f} us   "
              f"({(1 - ro.latency / rb.latency) * 100:4.1f}% better)")

    print()
    print("-- Part 2: Alltoallw ring-neighbour exchange --")
    for nprocs in (8, 32, 128):
        rb = alltoallw_ring_benchmark(nprocs, MPIConfig.baseline())
        ro = alltoallw_ring_benchmark(nprocs, MPIConfig.optimized())
        print(f"  {nprocs:3d} procs: round-robin {rb.latency * 1e6:8.1f} us   "
              f"binned {ro.latency * 1e6:8.1f} us   "
              f"({(1 - ro.latency / rb.latency) * 100:4.1f}% better)")
