#!/usr/bin/env python
"""The Bratu nonlinear PDE solved with the full PETSc-like stack.

Solves ``-lap(u) = mu * exp(u)`` with homogeneous Dirichlet conditions on
the unit square -- PETSc's classic SNES tutorial problem -- using every
layer of the paper's Fig. 1 architecture: DMDA ghost exchanges inside the
residual, a matrix-free Newton-Krylov SNES, GMRES inner solves, all over
the simulated MPI stack.

The Bratu problem has two solution branches for mu below the critical
value (~6.81 on the continuum square); Newton from u=0 finds the lower
branch, whose peak grows with mu.

Run:  python examples/bratu_nonlinear.py
"""

import numpy as np

from repro.mpi import Cluster, MPIConfig
from repro.petsc import DMDA, Laplacian, NewtonKrylov

GRID = (32, 32)

if __name__ == "__main__":
    for mu in (1.0, 3.0, 6.0):
        cluster = Cluster(4, config=MPIConfig.optimized(), heterogeneous=False)

        def main(comm, mu=mu):
            da = DMDA(comm, GRID)
            op = Laplacian(da)

            def residual(w, f):
                yield from op.mult(w, f)
                np.subtract(f.local, mu * np.exp(w.local), out=f.local)
                yield from f._flops(3.0)

            x = da.create_global_vec()
            result = yield from NewtonKrylov(residual, x, rtol=1e-10)
            peak = yield from x.max()
            return result, peak

        result, peak = cluster.run(main)[0]
        drop = result.residual_norms[-1] / result.residual_norms[0]
        print(f"mu = {mu:3.1f}: {'converged' if result.converged else 'FAILED':9s} "
              f"in {result.iterations} Newton steps "
              f"({result.linear_iterations} GMRES iterations), "
              f"residual x{drop:.1e}, max(u) = {peak:.4f}, "
              f"simulated time {cluster.elapsed * 1e3:.2f} ms")
    print()
    print("max(u) grows with mu along the lower Bratu branch, as expected.")
