#!/usr/bin/env python
"""Fig. 13-style pack/compute/wire/wait attribution with ``repro.prof``.

Attaches a :class:`repro.prof.Profiler` to a nonuniform Allgatherv (one
rank contributes a far larger block -- the paper's section 3.2 scenario)
under both MPI configurations and prints:

- the per-op breakdown table: elapsed simulated time decomposed into pack
  (datatype processing), compute, wire, and wait-for-peers shares,
- the wait-share skew across ranks (who idles behind whom),
- a selection of the Prometheus-style metrics the run emitted,

then dumps a Chrome trace (``chrome://tracing`` / Perfetto) of the
optimised run.

Run:  python examples/profile_breakdown.py [trace-out.json]
"""

import sys

import numpy as np

from repro.mpi import Cluster, MPIConfig
from repro.prof import Profiler, render_breakdown, write_chrome_trace
from repro.prof.export import wait_for_peers_report
from repro.util import CostModel

NRANKS = 8
SMALL, LARGE = 64, 16384          # doubles; rank 3 is the volume outlier

COUNTS = [SMALL] * NRANKS
COUNTS[3] = LARGE
DISPLS = np.concatenate(([0], np.cumsum(COUNTS[:-1]))).astype(int).tolist()
TOTAL = int(np.sum(COUNTS))


def main(comm):
    send = np.full(COUNTS[comm.rank], float(comm.rank + 1))
    recv = np.zeros(TOTAL)
    yield from comm.allgatherv(send, recv, COUNTS, DISPLS)
    return recv


def profile(config):
    cluster = Cluster(NRANKS, config=config, cost=CostModel(cpu_noise=0.0),
                      heterogeneous=False)
    prof = Profiler.attach(cluster, label=config.name)
    cluster.run(main)
    return cluster, prof


if __name__ == "__main__":
    profs = []
    for config in (MPIConfig.baseline(), MPIConfig.optimized()):
        cluster, prof = profile(config)
        profs.append(prof)
        rows = prof.breakdown("collective")
        print(f"== {config.name}: allgatherv, one {LARGE}-double outlier "
              f"among {NRANKS} ranks ==")
        print(render_breakdown(rows))
        skew = wait_for_peers_report(rows)["allgatherv"]
        print(f"wait share across ranks: min {skew['min_wait_share']:.0%}  "
              f"max {skew['max_wait_share']:.0%}  "
              f"mean {skew['mean_wait_share']:.0%}")
        snap = prof.snapshot()
        algo = {s.attrs.get("algorithm")
                for s in prof.tracer.by_name("allgatherv")}
        print(f"algorithm selected: {sorted(a for a in algo if a)}")
        for name in ("repro_transfer_messages_total",
                     "repro_transfer_bytes_total",
                     "repro_outlier_checks_total",
                     "repro_outlier_detected_total"):
            if name in snap:
                print(f"  {name} = {snap[name]}")
        print(f"elapsed simulated time: {cluster.elapsed * 1e3:.3f} ms")
        print()

    print("The ring serialises the big block behind N-1 sequential hops, so")
    print("most ranks spend the collective waiting; the adaptive selection")
    print("detects the outlier (Floyd-Rivest k-select) and switches to the")
    print("binomial-tree algorithm, cutting the wait share and the elapsed")
    print("time.")

    if len(sys.argv) > 1:
        path = sys.argv[1]
        write_chrome_trace(path, profs)
        print(f"\nChrome trace (both runs) written to {path}")
