#!/usr/bin/env python
"""Parallel finite elements on an unstructured mesh (paper Fig. 2, right).

Assembles and solves the Poisson problem on a triangulated unit square
with elements partitioned across ranks -- interface rows are assembled by
several ranks and shipped to their owners through the AIJ stash protocol
(PETSc's MatSetValues/MatAssembly), then solved with CG + block Jacobi.

Shows the O(h^2) convergence of the P1 discretisation and the cost of the
three communication paths.

Run:  python examples/fem_unstructured.py
"""

from repro.apps.fem_poisson import solve_poisson_fem
from repro.mpi import MPIConfig

if __name__ == "__main__":
    print("convergence (4 ranks, CG + block Jacobi):")
    prev = None
    for n in (8, 16, 32):
        r = solve_poisson_fem(4, n=n)
        rate = "" if prev is None else f"  (order {((prev / r.error_max)):.1f}x)"
        print(f"  {n:3d}x{n:<3d} mesh: max nodal error {r.error_max:.2e} "
              f"in {r.iterations} CG iterations{rate}")
        prev = r.error_max
    print()
    print("communication paths (32x32 mesh, 8 ranks):")
    for label, backend, config in (
        ("hand-tuned", "hand_tuned", MPIConfig.baseline()),
        ("MVAPICH2-0.9.5", "datatype", MPIConfig.baseline()),
        ("MVAPICH2-New", "datatype", MPIConfig.optimized()),
    ):
        r = solve_poisson_fem(8, n=32, backend=backend, config=config)
        print(f"  {label:15s}: {r.simulated_time * 1e3:8.2f} ms simulated "
              f"({r.iterations} iterations)")
