#!/usr/bin/env python
"""Profile the communication of a PETSc workload with the message trace.

Attaches a :class:`repro.mpi.trace.MessageTrace` to the vector-scatter
benchmark under both MPI configurations and prints what an MPI profiler
would show: the rank-to-rank message-count matrix and the number of
zero-byte synchronisation messages -- making the baseline's round-robin
pathology directly visible.

Run:  python examples/trace_communication.py
"""

import numpy as np

from repro.mpi import Cluster, MPIConfig
from repro.mpi.trace import MessageTrace
from repro.petsc import GeneralIS, Layout, Vec, VecScatter

NRANKS = 8
PER = 128


def main(comm):
    gsize = NRANKS * PER
    lay = Layout(comm.size, gsize)
    x = Vec(comm, lay)
    y = Vec(comm, lay)
    start, end = x.owned_range
    x.local[:] = np.arange(start, end, dtype=np.float64)
    # everyone scatters its block to its successor's block
    src = np.arange(gsize, dtype=np.int64)
    dst = (src + PER) % gsize
    sc = VecScatter.from_index_sets(comm, lay, GeneralIS(src), lay, GeneralIS(dst))
    yield from sc.scatter(x, y, backend="datatype")


if __name__ == "__main__":
    for config in (MPIConfig.baseline(), MPIConfig.optimized()):
        cluster = Cluster(NRANKS, config=config, heterogeneous=False)
        trace = MessageTrace.attach(cluster)
        cluster.run(main)
        counts = trace.message_counts()
        print(f"{config.name}: {len(trace)} messages, "
              f"{trace.zero_byte_count()} of them zero-byte syncs, "
              f"{trace.total_bytes()} payload bytes")
        print("message-count matrix (rows = sender):")
        for row in counts:
            print("   " + " ".join(f"{v:2d}" for v in row))
        print()
    print("The baseline messages every rank (the off-diagonal fill);")
    print("the binned Alltoallw only talks to actual partners.")
