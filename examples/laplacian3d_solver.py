#!/usr/bin/env python
"""The paper's application: a 3-D Laplacian multigrid solver (section 5.5).

Solves the Poisson problem on a 48^3 grid (a laptop-friendly stand-in for
the paper's 100^3; pass --full for the real thing) with three multigrid
levels on 16 simulated processes, under all three implementations the paper
compares.  Prints per-implementation execution time and the solver's
convergence history.

Run:  python examples/laplacian3d_solver.py [--full]
"""

import sys

from repro.apps.laplacian3d import laplacian3d_benchmark

if __name__ == "__main__":
    full = "--full" in sys.argv
    grid = (100, 100, 100) if full else (48, 48, 48)
    nprocs = 16
    print(f"3-D Laplacian, grid {grid}, {nprocs} processes, 3 MG levels")
    print()
    rows = []
    for impl in ("hand-tuned", "MVAPICH2-0.9.5", "MVAPICH2-New"):
        r = laplacian3d_benchmark(nprocs, impl, grid=grid, rtol=1e-6)
        rows.append(r)
        status = "converged" if r.converged else "NOT converged"
        print(f"{impl:15s}: {r.execution_time * 1e3:9.2f} ms  "
              f"({r.cycles} V-cycles, residual x{r.residual_reduction:.1e}, "
              f"{status})")
    base = next(r for r in rows if r.config_name == "MVAPICH2-0.9.5"
                and r.backend == "datatype")
    opt = next(r for r in rows if r.config_name == "MVAPICH2-New")
    print()
    print(f"optimised MPI improves the datatype path by "
          f"{(1 - opt.execution_time / base.execution_time) * 100:.1f}% "
          "at this scale; the gap widens with process count (Fig. 17).")
