#!/usr/bin/env python
"""Ghost-point exchange on a 2-D distributed grid (paper Figs. 2 and 3).

Creates a 2-D DMDA over a 3x3 process grid with a *box* stencil, so each
rank exchanges large face messages with its side neighbours, single corner
values with its diagonal neighbours, and *nothing* with non-adjacent ranks
-- the nonuniform communication volumes the paper analyses.  Runs the ghost
update with both VecScatter backends over both MPI configurations and
reports message statistics and simulated latency.

Run:  python examples/ghost_exchange_2d.py
"""

import numpy as np

from repro.mpi import Cluster, MPIConfig
from repro.petsc import DMDA

GRID = (66, 66)
NRANKS = 9


def main(comm, backend):
    da = DMDA(comm, GRID, stencil="box", stencil_width=1, proc_grid=(3, 3))
    v = da.create_global_vec()
    lo, hi = da.owned_box()
    # stamp each owned cell with its natural (row, col)
    rows = np.arange(lo[1], hi[1])[:, None]
    cols = np.arange(lo[2], hi[2])[None, :]
    da.global_array(v)[0] = rows * 1000 + cols

    larr = da.create_local_array()
    yield from comm.barrier()
    t0 = comm.engine.now
    yield from da.global_to_local(v, larr, backend=backend)
    elapsed = comm.engine.now - t0

    sc = da.ghost_scatter()
    volumes = {peer: offs.size * 8 for peer, offs in sc.send_map.items()}
    return elapsed, volumes


if __name__ == "__main__":
    for backend in ("hand_tuned", "datatype"):
        for config in (MPIConfig.baseline(), MPIConfig.optimized()):
            cluster = Cluster(NRANKS, config=config, heterogeneous=False)
            results = cluster.run(lambda comm: main(comm, backend))
            elapsed = max(t for t, _ in results)
            volumes = results[0][1]
            print(f"{backend:<11} over {config.name}:")
            print(f"  ghost update latency: {elapsed * 1e6:8.1f} us")
            print(f"  rank 0 send volumes : {volumes} bytes "
                  "(two faces + one corner: nonuniform!)")
            print(f"  messages on wire    : {cluster.net.messages_on_wire}")
            print()
    print("Note the baseline datatype path messages EVERY rank (zero-byte")
    print("synchronisations); the optimised Alltoallw exempts the zero bin.")
