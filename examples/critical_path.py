#!/usr/bin/env python
"""Find the straggler: causal critical-path analysis with ``prof.critical``.

The scenario is the paper's section 3.2 nonuniform Allgatherv with a
twist: rank 3 both contributes a far larger block *and* sits behind a
degraded NIC (every transfer it sends takes 8x as long -- injected with
the ``repro.faults`` wire-degrade rule).  Aggregate metrics blame
everyone equally -- every rank's wall time is the same makespan.  The
critical path names the culprit:

- :func:`repro.prof.critical_path` walks the causal event graph
  backwards from the last event (program order within each rank, causal
  ``msg_id`` message edges across ranks) and tiles ``[0, makespan]``
  with pack / compute / wire / wait segments,
- wire segments are attributed to the *sender* whose NIC gated them, so
  per-rank time-on-path concentrates on rank 3,
- :meth:`CriticalPath.stragglers` points the paper's section 4.2.1
  outlier detector (Floyd-Rivest k-select, Eq. 1) at those per-rank
  times and flags rank 3.

Run:  python examples/critical_path.py [critpath-out.json [flame-out.txt]]
"""

import sys

import numpy as np

from repro.faults.plan import FaultPlan
from repro.mpi import Cluster, MPIConfig
from repro.prof import Profiler, critical_path
from repro.prof.critical import write_report
from repro.prof.flame import write_flamegraph
from repro.util import CostModel

NRANKS = 8
SMALL, LARGE = 256, 16384         # doubles; rank 3 is the volume outlier
STRAGGLER = 3
NIC_DEGRADE = 8.0                 # rank 3's sends take 8x as long

COUNTS = [SMALL] * NRANKS
COUNTS[STRAGGLER] = LARGE
TOTAL = int(np.sum(COUNTS))


def main(comm):
    send = np.full(COUNTS[comm.rank], float(comm.rank + 1))
    recv = np.zeros(TOTAL)
    yield from comm.allgatherv(send, recv, COUNTS)
    return recv


if __name__ == "__main__":
    plan = FaultPlan().degrade(NIC_DEGRADE, src=STRAGGLER)
    cluster = Cluster(NRANKS, config=MPIConfig.optimized(),
                      cost=CostModel(cpu_noise=0.0), heterogeneous=False,
                      fault_plan=plan)
    prof = Profiler.attach(cluster, label="nonuniform allgatherv, slow NIC")
    cluster.run(main)

    crit = critical_path(prof)
    print(f"== allgatherv, {NRANKS} ranks: rank {STRAGGLER} sends "
          f"{LARGE} doubles over a {NIC_DEGRADE:g}x-slow NIC ==")
    print(crit.render())
    print()

    print("per-rank time on the critical path:")
    for rank, row in sorted(crit.by_rank().items()):
        share = row["total"] / crit.makespan
        bar = "#" * int(50 * share)
        print(f"  rank {rank}: {row['total'] * 1e6:8.1f} us "
              f"({share:5.1%})  {bar}")
    print()

    strag = crit.stragglers()
    assert strag["detected"] and STRAGGLER in strag["ranks"], strag
    print(f"straggler detector (Eq. 1, ratio {strag['ratio']:.2f} > "
          f"{strag['threshold']:g}): rank(s) {strag['ranks']} -- the "
          "slow-NIC rank, not the ranks that merely waited for it.")

    if len(sys.argv) > 1:
        write_report(sys.argv[1], prof)
        print(f"\nrepro-critpath/1 report written to {sys.argv[1]}")
    if len(sys.argv) > 2:
        write_flamegraph(sys.argv[2], prof)
        print(f"collapsed-stack flamegraph written to {sys.argv[2]}")
