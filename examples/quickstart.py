#!/usr/bin/env python
"""Quickstart: send a noncontiguous matrix column between two simulated
ranks and see what the paper is about.

Builds a two-rank simulated cluster twice -- once with the baseline MPI
(MVAPICH2-0.9.5 behaviour: single-context datatype engine) and once with
the paper's optimised stack -- sends one column of a matrix (a classic
noncontiguous derived datatype), and prints where the time went.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datatypes import DOUBLE, TypedBuffer, Vector
from repro.mpi import Cluster, MPIConfig

N = 4096  # matrix rows: the column payload is 32 KB, several pipeline chunks


def main(comm):
    """The per-rank program: rank 0 sends column 7, rank 1 receives it."""
    if comm.rank == 0:
        matrix = np.arange(N * 16, dtype=np.float64).reshape(N, 16)
        column = TypedBuffer(
            matrix, Vector(N, 1, 16, DOUBLE), offset_bytes=7 * 8
        )
        yield from comm.send(column, dest=1)
        return None
    buf = np.zeros(N)
    yield from comm.recv(buf, source=0)
    return buf


if __name__ == "__main__":
    for config in (MPIConfig.baseline(), MPIConfig.optimized()):
        cluster = Cluster(2, config=config, heterogeneous=False)
        results = cluster.run(main)
        received = results[1]
        expected = np.arange(N * 16, dtype=np.float64).reshape(N, 16)[:, 7]
        assert np.array_equal(received, expected), "column corrupted!"
        ledger = cluster.ledgers[0]
        print(f"{config.name}:")
        print(f"  simulated latency : {cluster.elapsed * 1e6:9.1f} us")
        for cat in ("comm", "pack", "search", "lookahead"):
            print(f"  {cat:<18}: {ledger.get(cat) * 1e6:9.1f} us")
        print()
    print("The baseline pays a 'search' cost that grows quadratically with")
    print("the datatype; the dual-context engine (section 4.1) eliminates it.")
