#!/usr/bin/env python
"""Checkpoint a distributed field with MPI-IO subarray views.

Each rank writes its owned box of a 2-D DMDA field into a single shared
file in *natural* (global row-major) order, using a ``Subarray`` filetype
view -- the canonical MPI-IO pattern.  The checkpoint is then read back on
a cluster with a DIFFERENT process count, demonstrating that the file
layout is decomposition-independent.

Run:  python examples/checkpoint_io.py
"""

import numpy as np

from repro.datatypes import DOUBLE, Subarray
from repro.mpi import Cluster, MPIConfig
from repro.mpi.io import File, _SimFileSystem
from repro.petsc import DMDA

GRID = (32, 48)


def field_value(iy, ix):
    return np.sin(0.2 * iy) * np.cos(0.1 * ix)


def writer(comm):
    da = DMDA(comm, GRID)
    v = da.create_global_vec()
    lo, hi = da.owned_box()
    ys = np.arange(lo[1], hi[1])[:, None]
    xs = np.arange(lo[2], hi[2])[None, :]
    da.global_array(v)[0] = field_value(ys, xs)

    fh = yield from File.open(comm, "field.chk")
    filetype = Subarray(
        [GRID[0], GRID[1]],
        [hi[1] - lo[1], hi[2] - lo[2]],
        [lo[1], lo[2]],
        DOUBLE,
    )
    fh.set_view(0, filetype)
    yield from fh.write_all(v.local)
    yield from fh.close()
    return comm.engine.now


def reader(comm):
    da = DMDA(comm, GRID)
    lo, hi = da.owned_box()
    fh = yield from File.open(comm, "field.chk")
    filetype = Subarray(
        [GRID[0], GRID[1]],
        [hi[1] - lo[1], hi[2] - lo[2]],
        [lo[1], lo[2]],
        DOUBLE,
    )
    fh.set_view(0, filetype)
    mine = np.zeros((hi[1] - lo[1]) * (hi[2] - lo[2]))
    yield from fh.read_all(mine)
    yield from fh.close()
    ys = np.arange(lo[1], hi[1])[:, None]
    xs = np.arange(lo[2], hi[2])[None, :]
    expect = field_value(ys, xs).reshape(-1)
    return bool(np.allclose(mine, expect))


if __name__ == "__main__":
    # write on 6 ranks
    w = Cluster(6, config=MPIConfig.optimized(), heterogeneous=False)
    w.run(writer)
    fs = _SimFileSystem.of(w)
    print(f"checkpoint written by 6 ranks: {fs.files['field.chk'].size} bytes, "
          f"{fs.ops} file ops, simulated {w.elapsed * 1e3:.2f} ms")

    # read on 4 ranks (different decomposition!) -- share the file store
    r = Cluster(4, config=MPIConfig.optimized(), heterogeneous=False)
    setattr(r, _SimFileSystem.key, _SimFileSystem(r))
    _SimFileSystem.of(r).files.update(fs.files)
    ok = all(r.run(reader))
    print(f"re-read by 4 ranks with a different decomposition: "
          f"{'all values verified' if ok else 'MISMATCH'}")
