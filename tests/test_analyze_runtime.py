"""Runtime verification: the four deliberately-broken fixtures plus clean
runs.  Each fixture asserts that its finding fires exactly once."""

import gc
import warnings

import numpy as np
import pytest

from repro.analyze import RuntimeVerifier
from repro.mpi import Cluster, MPIConfig
from repro.mpi.trace import MessageTrace
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n, config=None, **kw):
    kw.setdefault("cost", QUIET)
    kw.setdefault("heterogeneous", False)
    return Cluster(n, config=config or MPIConfig.optimized(), **kw)


def run_verified(n, fn, *args, config=None):
    cluster = make_cluster(n, config=config)
    verifier = RuntimeVerifier.attach(cluster)
    results = verifier.run(fn, *args)
    return verifier, results


# -- fixture 1: send/receive signature mismatch (SIG001) ----------------------

def broken_signature_mismatch(comm):
    """Rank 0 sends doubles; rank 1 receives into int32 -- a signature
    mismatch that real MPI silently reinterprets into garbage."""
    if comm.rank == 0:
        yield from comm.send(np.arange(4, dtype=np.float64), 1)
    else:
        buf = np.zeros(8, dtype=np.int32)
        yield from comm.recv(buf, 0)  # analyze: ignore[MTC105]


def test_fixture_signature_mismatch_fires_sig001_once():
    verifier, results = run_verified(2, broken_signature_mismatch)
    sig = verifier.report.by_rule("SIG001")
    assert len(sig) == 1
    assert "not a prefix" in sig[0].message
    assert results is not None  # bytes still flow; only the types disagree


# -- fixture 2: wait-for cycle deadlock (DLK001) ------------------------------

def broken_deadlock_cycle(comm):
    """Both ranks recv before they send: the classic head-to-head
    blocking-receive deadlock."""
    buf = np.zeros(4, dtype=np.float64)
    other = 1 - comm.rank
    yield from comm.recv(buf, other)  # analyze: ignore[MTC103]
    yield from comm.send(buf, other)


def test_fixture_deadlock_cycle_fires_dlk001_once():
    verifier, results = run_verified(2, broken_deadlock_cycle)
    assert results is None
    assert verifier.deadlock is not None
    dlk = verifier.report.by_rule("DLK001")
    assert len(dlk) == 1
    assert "0 -> 1 -> 0" in dlk[0].message
    # the two never-satisfied receives are also reported
    assert len(verifier.report.by_rule("P2P002")) == 2


def test_rendezvous_sends_appear_in_wait_graph():
    """Head-to-head blocking *sends* above the eager threshold also
    deadlock; the rendezvous sends supply the wait-for edges."""
    config = MPIConfig.optimized()

    def main(comm):
        big = np.zeros(config.eager_threshold // 8 + 16, dtype=np.float64)
        other = 1 - comm.rank
        yield from comm.send(big, other)
        yield from comm.recv(big, other)

    verifier, results = run_verified(2, main, config=config)
    assert results is None
    assert len(verifier.report.by_rule("DLK001")) == 1
    assert "rendezvous" in verifier.report.by_rule("DLK001")[0].message


# -- fixture 3: leaked request (REQ001) ---------------------------------------

def broken_leaked_request(comm):
    """Rank 0 posts a nonblocking send and never completes it."""
    if comm.rank == 0:
        # the leak is the point of the fixture  # analyze: ignore[REQ101]
        req = yield from comm.isend(np.arange(4, dtype=np.float64), 1)
        assert not req.waited
        yield from comm.barrier()
    else:
        buf = np.zeros(4, dtype=np.float64)
        req = comm.irecv(buf, 0)
        yield from req.wait()
        yield from comm.barrier()


def test_fixture_leaked_request_fires_req001_once():
    verifier, results = run_verified(2, broken_leaked_request)
    assert results is not None  # the run itself completes fine
    req = verifier.report.by_rule("REQ001")
    assert len(req) == 1
    assert "rank 0" in req[0].message and "send" in req[0].message
    # nothing else is wrong with this program
    assert len(verifier.report.by_rule("DLK001")) == 0
    assert len(verifier.report.by_rule("P2P001")) == 0


def test_request_gc_warns_resourcewarning():
    """Dropping an uncompleted Request raises ResourceWarning at GC time
    (satellite: request lifecycle warning)."""
    from repro.mpi.request import Request
    from repro.simtime.engine import Engine

    engine = Engine()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        req = Request(engine.future("orphan"), "send")
        del req
        gc.collect()
    assert any(issubclass(w.category, ResourceWarning) for w in caught)

    # a waited request is silent
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fut = engine.future("done")
        fut.set_result(None)
        req = Request(fut, "send")
        done, _ = req.test()
        assert done and req.waited
        del req
        gc.collect()
    assert not any(issubclass(w.category, ResourceWarning) for w in caught)


def test_request_test_polls_without_blocking():
    from repro.mpi.request import Request
    from repro.simtime.engine import Engine

    engine = Engine()
    fut = engine.future("poll")
    req = Request(fut, "recv")
    assert req.test() == (False, None)
    assert not req.waited
    fut.set_result("payload")
    assert req.test() == (True, "payload")
    assert req.waited


# -- fixture 4: mismatched collective (COL001) --------------------------------

def broken_mismatched_collective(comm):
    """Rank 0 enters a bcast while rank 1 enters a barrier: a collective
    call-order mismatch across the communicator."""
    buf = np.zeros(1, dtype=np.float64)
    if comm.rank == 0:
        yield from comm.bcast(buf, root=0)  # analyze: ignore[SPMD101]
    else:
        yield from comm.barrier()  # analyze: ignore[SPMD101,MTC104]


def test_fixture_mismatched_collective_fires_col001_once():
    verifier, results = run_verified(2, broken_mismatched_collective)
    col = verifier.report.by_rule("COL001")
    assert len(col) == 1
    assert "bcast" in col[0].message and "barrier" in col[0].message


def test_mismatched_collective_root_fires_col002():
    """Same collective, different root arguments."""
    def main(comm):
        buf = np.zeros(1, dtype=np.float64)
        yield from comm.bcast(buf, root=comm.rank)

    verifier, results = run_verified(2, main)
    col = verifier.report.by_rule("COL002")
    assert len(col) == 1
    assert len(verifier.report.by_rule("COL001")) == 0


# -- clean programs stay clean ------------------------------------------------

def clean_exchange(comm):
    other = 1 - comm.rank
    out = np.full(16, float(comm.rank), dtype=np.float64)
    buf = np.zeros(16, dtype=np.float64)
    yield from comm.sendrecv(out, other, buf, other)
    total = yield from comm.allreduce(float(buf[0]))
    yield from comm.barrier()
    return total


def test_clean_program_produces_no_actionable_findings():
    verifier, results = run_verified(2, clean_exchange)
    assert results == [1.0, 1.0]
    assert verifier.report.ok, verifier.report.render()


def test_zero_byte_audit_is_informational():
    """Typed zero-byte sends are counted (ZBS001) but never fail a run."""
    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(0, dtype=np.float64), 1)
        else:
            yield from comm.recv(np.zeros(0, dtype=np.float64), 0)

    verifier, results = run_verified(2, main)
    assert results is not None
    zbs = verifier.report.by_rule("ZBS001")
    assert len(zbs) == 1 and zbs[0].severity == "info"
    assert verifier.report.ok  # info-only report is still ok


def test_finalize_is_idempotent():
    verifier, _results = run_verified(2, broken_deadlock_cycle)
    n = len(verifier.report)
    verifier.finalize()
    verifier.finalize()
    assert len(verifier.report) == n


# -- trace satellite: signature metadata and unmatched() ----------------------

def test_trace_records_signature_hash_and_unmatched():
    from repro.simtime.engine import SimulationDeadlock

    cluster = make_cluster(2)
    trace = MessageTrace.attach(cluster)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.arange(4, dtype=np.float64), 1, tag=3)
            yield from comm.send(np.arange(4, dtype=np.float64), 1, tag=9)
        else:
            buf = np.zeros(4, dtype=np.float64)
            yield from comm.recv(buf, 0, tag=3)
            # tag=9 is never received -> unmatched send

    # the orphaned delivery process blocks the engine at end of run
    with pytest.raises(SimulationDeadlock):
        cluster.run(main)
    sigs = trace.signature_counts()
    assert len(sigs) == 1  # both sends share one typemap signature
    assert sum(sigs.values()) >= 1
    pending = trace.unmatched()
    assert pending["sends"] == [(0, 1, 9, 32)]
    assert pending["recvs"] == []


def test_trace_unmatched_reports_orphan_recv():
    cluster = make_cluster(2)
    trace = MessageTrace.attach(cluster)

    def main(comm):
        if comm.rank == 1:
            comm.irecv(np.zeros(4, dtype=np.float64), 0, tag=5)
        yield from comm.barrier()

    with pytest.warns(ResourceWarning):
        cluster.run(main)
        gc.collect()
    pending = trace.unmatched()
    assert pending["recvs"] == [(1, 0, 5)]
