"""Property-based fuzzing of DMDA ghost exchanges over random
configurations (dims, process grid, stencil, width, periodicity, dof),
checked against a numpy padding oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import Cluster, MPIConfig
from repro.petsc import DMDA
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


@st.composite
def dmda_config(draw):
    ndim = draw(st.integers(1, 3))
    width = draw(st.integers(1, 2))
    nranks = draw(st.sampled_from([1, 2, 3, 4, 6]))
    # choose dims large enough for any balanced split to fit the width
    # (smallest part of n over p is >= n//p, so n >= p*(width+1)) and for
    # periodic wrap-around (n >= 2*width)
    lo = max(nranks * (width + 1), 2 * width)
    dims = [draw(st.integers(lo, lo + 8)) for _ in range(ndim)]
    stencil = draw(st.sampled_from(["star", "box"]))
    periodic = [draw(st.booleans()) for _ in range(ndim)]
    dof = draw(st.sampled_from([1, 2]))
    return nranks, dims, stencil, width, periodic, dof


@given(dmda_config(), st.sampled_from(["datatype", "hand_tuned"]))
@settings(max_examples=40, deadline=None)
def test_ghost_exchange_matches_oracle(config, backend):
    nranks, dims, stencil, width, periodic, dof = config
    cluster = Cluster(nranks, config=MPIConfig.optimized(), cost=QUIET,
                      heterogeneous=False)

    def main(comm):
        da = DMDA(comm, dims, dof=dof, stencil=stencil, stencil_width=width,
                  periodic=periodic)
        v = da.create_global_vec()
        lo, hi = da.owned_box()
        z, y, x = np.meshgrid(
            np.arange(lo[0], hi[0]), np.arange(lo[1], hi[1]),
            np.arange(lo[2], hi[2]), indexing="ij",
        )
        stamp = (z * 1_000_000 + y * 1000 + x).astype(np.float64)
        if dof > 1:
            stamp = stamp[..., None] * 10 + np.arange(dof)
        v.local[:] = stamp.reshape(-1)
        larr = da.create_local_array()
        yield from da.global_to_local(v, larr, backend=backend)
        return da.owned_box(), da.ghosted_box(), larr

    results = cluster.run(main)

    dims3 = [1] * (3 - len(dims)) + list(dims)
    per3 = [False] * (3 - len(periodic)) + list(periodic)
    z, y, x = np.meshgrid(*[np.arange(s) for s in dims3], indexing="ij")
    full = (z * 1_000_000 + y * 1000 + x).astype(np.float64)
    if dof > 1:
        full = full[..., None] * 10 + np.arange(dof)
    pad = [(width, width) if s > 1 else (0, 0) for s in dims3]
    padded = full
    for axis in range(3):
        p = [(0, 0)] * (3 + (1 if dof > 1 else 0))
        p[axis] = pad[axis]
        padded = np.pad(padded, p, mode="wrap" if per3[axis] else "constant")
    off = [p[0] for p in pad]

    for rank, ((lo, hi), (glo, ghi), larr) in enumerate(results):
        expect = padded[
            glo[0] + off[0]:ghi[0] + off[0],
            glo[1] + off[1]:ghi[1] + off[1],
            glo[2] + off[2]:ghi[2] + off[2],
        ]
        got = larr.reshape(expect.shape)
        coords = np.meshgrid(
            *[np.arange(glo[d], ghi[d]) for d in range(3)], indexing="ij"
        )
        outside = sum(
            ((coords[d] < lo[d]) | (coords[d] >= hi[d])).astype(int)
            for d in range(3)
        )
        mask = (outside <= 1) if stencil == "star" else (outside >= 0)
        if dof > 1:
            mask = np.broadcast_to(mask[..., None], expect.shape)
        assert np.array_equal(got[mask], expect[mask]), (rank, config)
