"""Tests for the geometric multigrid solver."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import CG, DMDA, Laplacian, MGSolver, PETScError
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def rhs_for(da):
    lo, hi = da.owned_box()
    axes = []
    active = 0
    for d in range(3):
        n = da.dims[d]
        if n > 1:
            active += 1
            centers = (np.arange(lo[d], hi[d]) + 0.5) / n
            axes.append(np.sin(np.pi * centers))
        else:
            axes.append(np.ones(hi[d] - lo[d]))
    u = axes[0][:, None, None] * axes[1][None, :, None] * axes[2][None, None, :]
    return (active * np.pi**2 * u).reshape(-1), u.reshape(-1)


@pytest.mark.parametrize("nranks,dims,levels", [
    (1, (32, 32), 3),
    (4, (32, 32), 3),
    (4, (16, 16, 16), 3),
    (8, (16, 16, 16), 2),
])
def test_mg_solve_converges(nranks, dims, levels):
    cluster = make_cluster(nranks)

    def main(comm):
        da = DMDA(comm, dims)
        mg = MGSolver(da, nlevels=levels)
        b = da.create_global_vec()
        x = da.create_global_vec()
        f, u_exact = rhs_for(da)
        b.local[:] = f
        result = yield from mg.solve(b, x, rtol=1e-8, max_cycles=30)
        err = float(np.max(np.abs(x.local - u_exact))) if x.local_size else 0.0
        err = yield from comm.allreduce(err, op=max)
        return result, err

    for result, err in cluster.run(main):
        assert result.converged, result.residual_norms
        assert result.iterations <= 20
        assert err < 0.02  # discretisation error only


def test_mg_residuals_contract_per_cycle():
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (32, 32))
        mg = MGSolver(da, nlevels=3)
        b = da.create_global_vec()
        x = da.create_global_vec()
        rng = np.random.default_rng(comm.rank)
        b.local[:] = rng.random(b.local_size)
        result = yield from mg.solve(b, x, rtol=1e-10, max_cycles=25)
        return result

    result = cluster.run(main)[0]
    norms = result.residual_norms
    # average contraction factor well below 1 (healthy V-cycle)
    factors = [b / a for a, b in zip(norms, norms[1:]) if a > 0]
    assert np.mean(factors) < 0.4, factors


def test_mg_faster_than_unpreconditioned_cg_in_iterations():
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (64, 64))
        b = da.create_global_vec()
        b.local[:] = 1.0
        x1 = da.create_global_vec()
        mg = MGSolver(da, nlevels=4)
        mg_result = yield from mg.solve(b, x1, rtol=1e-8, max_cycles=40)
        x2 = da.create_global_vec()
        op = Laplacian(da)
        cg_result = yield from CG(op, b, x2, rtol=1e-8, maxits=500)
        return mg_result, cg_result, float(np.max(np.abs(x1.local - x2.local)))

    mg_result, cg_result, diff = cluster.run(main)[0]
    assert mg_result.converged and cg_result.converged
    assert mg_result.iterations < cg_result.iterations / 3
    assert diff < 1e-6  # both solve the same system


def test_mg_as_cg_preconditioner():
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (32, 32))
        mg = MGSolver(da, nlevels=3)
        op = Laplacian(da)
        b = da.create_global_vec()
        b.local[:] = 1.0
        x = da.create_global_vec()
        result = yield from CG(op, b, x, rtol=1e-8, maxits=50, pc=mg.pc_apply)
        return result

    result = cluster.run(main)[0]
    assert result.converged
    # the V-cycle is mildly nonsymmetric (average restriction is not the
    # trilinear prolongation's transpose), so CG is not optimal with it --
    # but it must still beat unpreconditioned CG (~90 its on this grid)
    assert result.iterations <= 30


def test_mg_odd_dimension_rejected():
    cluster = make_cluster(1)

    def main(comm):
        da = DMDA(comm, (30, 30))  # 30 -> 15 -> 7.5: fails at level 3
        MGSolver(da, nlevels=3)
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)


def test_mg_single_level_is_coarse_solver():
    cluster = make_cluster(2)

    def main(comm):
        da = DMDA(comm, (16, 16))
        mg = MGSolver(da, nlevels=1, coarse_rtol=1e-10, coarse_maxits=400)
        b = da.create_global_vec()
        b.local[:] = 1.0
        x = da.create_global_vec()
        result = yield from mg.solve(b, x, rtol=1e-6, max_cycles=5)
        return result

    assert cluster.run(main)[0].converged


def test_mg_hand_tuned_backend_same_answer():
    def solve(backend):
        cluster = make_cluster(4)

        def main(comm):
            da = DMDA(comm, (16, 16, 16))
            mg = MGSolver(da, nlevels=2, backend=backend)
            b = da.create_global_vec()
            f, _ = rhs_for(da)
            b.local[:] = f
            x = da.create_global_vec()
            yield from mg.solve(b, x, rtol=1e-8, max_cycles=20)
            return x.local.copy()

        return np.concatenate(cluster.run(main))

    a = solve("datatype")
    b = solve("hand_tuned")
    assert np.allclose(a, b, atol=1e-12)


def test_transfer_restrict_prolong_shapes():
    """Restriction of a constant is the constant; prolongation of a constant
    is the constant (partition of unity)."""
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (16, 16))
        mg = MGSolver(da, nlevels=2)
        t = mg.transfers[0]
        fine = mg.das[0].create_global_vec()
        coarse = mg.das[1].create_global_vec()
        yield from fine.set(3.0)
        yield from t.restrict(fine, coarse)
        ok1 = bool(np.allclose(coarse.local, 3.0))
        fine2 = mg.das[0].create_global_vec()
        yield from coarse.set(2.0)
        yield from t.prolong_add(coarse, fine2)
        ok2 = bool(np.allclose(fine2.local, 2.0))
        return ok1 and ok2

    assert all(cluster.run(main))
