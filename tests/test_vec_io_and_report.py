"""Tests for Vec.save/load over MPI-IO and the cluster utilization report."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.mpi.io import _SimFileSystem
from repro.petsc import Layout, Vec
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def test_vec_save_load_roundtrip_same_layout():
    cluster = make_cluster(4)

    def main(comm):
        lay = Layout(comm.size, 32)
        v = Vec(comm, lay)
        start, end = v.owned_range
        v.local[:] = np.arange(start, end, dtype=np.float64) ** 2
        yield from v.save("vec.bin")
        w = Vec(comm, lay)
        yield from w.load("vec.bin")
        return bool(np.array_equal(v.local, w.local))

    assert all(cluster.run(main))


def test_vec_save_load_different_decomposition():
    """The on-disk format is global order: re-load with other local sizes."""
    cluster = make_cluster(3)

    def main(comm):
        lay_a = Layout(comm.size, 12, [6, 3, 3])
        v = Vec(comm, lay_a)
        start, end = v.owned_range
        v.local[:] = np.arange(start, end, dtype=np.float64)
        yield from v.save("redistrib.bin")
        lay_b = Layout(comm.size, 12, [2, 2, 8])
        w = Vec(comm, lay_b)
        yield from w.load("redistrib.bin")
        s, e = w.owned_range
        return bool(np.array_equal(w.local, np.arange(s, e, dtype=np.float64)))

    assert all(cluster.run(main))


def test_vec_save_writes_global_order_bytes():
    cluster = make_cluster(2)

    def main(comm):
        v = Vec(comm, Layout(comm.size, 8))
        start, end = v.owned_range
        v.local[:] = np.arange(start, end, dtype=np.float64) * 3
        yield from v.save("ordered.bin")

    cluster.run(main)
    raw = _SimFileSystem.of(cluster).files["ordered.bin"][:64].view(np.float64)
    assert np.array_equal(raw, np.arange(8, dtype=np.float64) * 3)


def test_utilization_report():
    cluster = make_cluster(2)

    def main(comm):
        other = 1 - comm.rank
        yield from comm.compute(1e-3)
        sbuf = np.zeros(1000)
        rbuf = np.zeros(1000)
        yield from comm.sendrecv(sbuf, other, rbuf, other)

    cluster.run(main)
    report = cluster.utilization_report()
    assert report["messages"] == 2
    assert report["bytes"] == 16000
    assert report["elapsed"] > 1e-3
    assert 0.0 < report["max_send_link_utilization"] <= 1.0
    assert report["cpu_seconds_by_category"]["compute"] == pytest.approx(2e-3)


def test_utilization_report_empty_run():
    cluster = make_cluster(2)

    def main(comm):
        yield from comm.barrier()

    cluster.run(main)
    report = cluster.utilization_report()
    assert report["messages"] >= 1  # the barrier's messages
    assert report["bytes"] == 0     # all zero-byte
