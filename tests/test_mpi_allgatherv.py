"""Tests for Allgatherv algorithms and the adaptive selection logic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import Cluster, MPIConfig
from repro.mpi.algorithms import SelectionContext, select
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def run_allgatherv(n, counts, config, algorithm=None, seed=0):
    """All ranks contribute rank-stamped data; return (results, elapsed)."""
    cluster = Cluster(n, config=config, cost=QUIET, heterogeneous=False, seed=seed)
    displs = np.concatenate(([0], np.cumsum(counts[:-1]))).astype(int).tolist()
    total = int(np.sum(counts))

    def main(comm):
        send = np.full(counts[comm.rank], float(comm.rank + 1))
        recv = np.zeros(total)
        yield from comm.allgatherv(send, recv, counts, displs, algorithm=algorithm)
        return recv

    results = cluster.run(main)
    return results, cluster.elapsed


def expected(counts):
    parts = [np.full(c, float(r + 1)) for r, c in enumerate(counts)]
    return np.concatenate(parts) if parts else np.zeros(0)


@pytest.mark.parametrize("algorithm", ["ring", "recursive_doubling", "dissemination"])
@pytest.mark.parametrize("n", [2, 4, 8])
def test_algorithms_correct_uniform(algorithm, n):
    counts = [3] * n
    results, _ = run_allgatherv(n, counts, MPIConfig.optimized(), algorithm)
    exp = expected(counts)
    for r in results:
        assert np.array_equal(r, exp)


@pytest.mark.parametrize("algorithm", ["ring", "dissemination"])
@pytest.mark.parametrize("n", [3, 5, 7, 12])
def test_algorithms_correct_non_power_of_two(algorithm, n):
    counts = [(r % 3) + 1 for r in range(n)]
    results, _ = run_allgatherv(n, counts, MPIConfig.optimized(), algorithm)
    exp = expected(counts)
    for r in results:
        assert np.array_equal(r, exp)


def test_recursive_doubling_rejects_non_power_of_two():
    with pytest.raises(Exception):
        run_allgatherv(3, [1, 1, 1], MPIConfig.optimized(), "recursive_doubling")


@pytest.mark.parametrize("n", [4, 8])
def test_nonuniform_with_zero_counts(n):
    counts = [0] * n
    counts[1] = 5
    counts[n - 1] = 2
    for algorithm in ("ring", "recursive_doubling", "dissemination"):
        results, _ = run_allgatherv(n, counts, MPIConfig.optimized(), algorithm)
        exp = expected(counts)
        for r in results:
            assert np.array_equal(r, exp)


def test_one_large_contribution_correct_all_algorithms():
    n = 8
    counts = [1] * n
    counts[0] = 4096  # 32 KB outlier
    for algorithm in ("ring", "recursive_doubling", "dissemination", None):
        for config in (MPIConfig.baseline(), MPIConfig.optimized()):
            results, _ = run_allgatherv(n, counts, config, algorithm)
            exp = expected(counts)
            for r in results:
                assert np.array_equal(r, exp)


def test_adaptive_beats_ring_on_outlier_workload():
    """The paper's Fig. 14 situation: one big block, everyone else tiny."""
    n = 16
    counts = [1] * n
    counts[0] = 16384  # 128 KB from rank 0
    _, t_ring = run_allgatherv(n, counts, MPIConfig.baseline(), "ring")
    _, t_tree = run_allgatherv(n, counts, MPIConfig.baseline(), "recursive_doubling")
    assert t_tree < t_ring


def test_ring_competitive_on_uniform_large_volumes():
    """For uniform volumes both algorithms move (N-1) blocks per rank; in the
    contention-free alpha-beta model they are near-equal (the ring's real
    advantage -- nearest-neighbour locality -- is outside the model).  What
    matters for the paper is that the ring is NOT pathological here, unlike
    the outlier case where it is ~N/log(N) slower."""
    n = 8
    counts = [8192] * n  # 64 KB each
    _, t_ring = run_allgatherv(n, counts, MPIConfig.baseline(), "ring")
    _, t_tree = run_allgatherv(n, counts, MPIConfig.baseline(), "recursive_doubling")
    assert t_ring < t_tree * 1.15


class _FakeComm:
    def __init__(self, size, config, cost):
        self.size = size
        self.config = config
        self.cost = cost


def _select_algorithm(comm, counts, dtype):
    """The pre-registry helper, reconstructed on the policy layer."""
    ctx = SelectionContext.for_comm(
        comm, "allgatherv",
        volumes=[c * dtype.size for c in counts],
        dtype_size=dtype.size,
        contiguous=dtype.is_contiguous(),
    )
    return select(comm, "allgatherv", ctx).algorithm


def test_selection_logic():
    from repro.datatypes import DOUBLE

    base = _FakeComm(8, MPIConfig.baseline(), QUIET)
    opt = _FakeComm(8, MPIConfig.optimized(), QUIET)
    uniform_large = [4096] * 8
    outlier_large = [1] * 8
    outlier_large[0] = 32768
    small = [10] * 8
    # small totals take the tree path everywhere
    assert _select_algorithm(base, small, DOUBLE) == "recursive_doubling"
    assert _select_algorithm(opt, small, DOUBLE) == "recursive_doubling"
    # large uniform stays on the ring in both configurations
    assert _select_algorithm(base, uniform_large, DOUBLE) == "ring"
    assert _select_algorithm(opt, uniform_large, DOUBLE) == "ring"
    # large with outliers: only the optimised config escapes the ring
    assert _select_algorithm(base, outlier_large, DOUBLE) == "ring"
    assert _select_algorithm(opt, outlier_large, DOUBLE) == "recursive_doubling"
    # non-power-of-two world uses dissemination
    opt5 = _FakeComm(5, MPIConfig.optimized(), QUIET)
    assert _select_algorithm(opt5, [32768, 1, 1, 1, 1], DOUBLE) == "dissemination"
    # an explicit selection_policy overrides the feature flags
    pinned = _FakeComm(8, MPIConfig.baseline().with_(
        selection_policy="adaptive"), QUIET)
    assert _select_algorithm(pinned, outlier_large, DOUBLE) == "recursive_doubling"


def test_default_selection_runs_inside_collective():
    n = 8
    counts = [1] * n
    counts[0] = 16384
    results, _ = run_allgatherv(n, counts, MPIConfig.optimized(), None)
    exp = expected(counts)
    for r in results:
        assert np.array_equal(r, exp)


@given(
    st.integers(2, 9),
    st.data(),
)
@settings(max_examples=30, deadline=None)
def test_property_all_algorithms_agree(n, data):
    counts = data.draw(
        st.lists(st.integers(0, 40), min_size=n, max_size=n).filter(lambda c: sum(c) > 0)
    )
    exp = expected(counts)
    algorithms = ["ring", "dissemination"]
    if n & (n - 1) == 0:
        algorithms.append("recursive_doubling")
    for algorithm in algorithms:
        results, _ = run_allgatherv(n, counts, MPIConfig.optimized(), algorithm)
        for r in results:
            assert np.array_equal(r, exp)
