"""Tests for the unstructured FEM Poisson application."""

import numpy as np
import pytest

from repro.apps.fem_poisson import (
    element_stiffness,
    solve_poisson_fem,
    triangulate,
)
from repro.mpi import MPIConfig
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def test_triangulation_counts_and_areas():
    coords, tris = triangulate(4, 3)
    assert coords.shape == (5 * 4, 2)
    assert tris.shape == (2 * 4 * 3, 3)
    _K, area = element_stiffness(coords, tris)
    assert np.all(area > 0)
    assert area.sum() == pytest.approx(1.0)  # the unit square is covered


def test_element_stiffness_properties():
    coords, tris = triangulate(3, 3)
    K, _area = element_stiffness(coords, tris)
    # symmetric, rows sum to zero (constants are in the kernel)
    assert np.allclose(K, K.transpose(0, 2, 1))
    assert np.allclose(K.sum(axis=2), 0.0, atol=1e-12)
    # diagonal positive
    assert np.all(K[:, [0, 1, 2], [0, 1, 2]] > 0)


def test_reference_triangle_stiffness():
    """The unit right triangle has the textbook stiffness matrix."""
    coords = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    K, area = element_stiffness(coords, np.array([[0, 1, 2]]))
    assert area[0] == pytest.approx(0.5)
    expect = np.array([[1.0, -0.5, -0.5], [-0.5, 0.5, 0.0], [-0.5, 0.0, 0.5]])
    assert np.allclose(K[0], expect)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_fem_solves_manufactured_problem(nprocs):
    r = solve_poisson_fem(nprocs, n=16, cost=QUIET)
    assert r.converged
    assert r.error_max < 0.01


def test_fem_second_order_convergence():
    e1 = solve_poisson_fem(2, n=8, cost=QUIET).error_max
    e2 = solve_poisson_fem(2, n=16, cost=QUIET).error_max
    rate = np.log2(e1 / e2)
    assert 1.6 < rate < 2.4, (e1, e2, rate)


def test_fem_backends_agree():
    a = solve_poisson_fem(4, n=12, backend="datatype", cost=QUIET)
    b = solve_poisson_fem(4, n=12, backend="hand_tuned", cost=QUIET)
    assert a.converged and b.converged
    assert a.error_max == pytest.approx(b.error_max, rel=1e-8)


def test_fem_parallel_matches_serial():
    a = solve_poisson_fem(1, n=12, cost=QUIET)
    b = solve_poisson_fem(4, n=12, cost=QUIET)
    assert a.error_max == pytest.approx(b.error_max, rel=1e-6)


def test_fem_configs_agree_numerically():
    a = solve_poisson_fem(4, n=12, config=MPIConfig.baseline(), cost=QUIET)
    b = solve_poisson_fem(4, n=12, config=MPIConfig.optimized(), cost=QUIET)
    assert a.error_max == pytest.approx(b.error_max, rel=1e-8)
