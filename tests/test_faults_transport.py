"""Reliable transport under injected wire faults.

The contract: with ``MPIConfig(reliable_transport=True)`` the application
observes *exactly* the data a fault-free run would deliver -- drops,
corruption and duplication are masked by seq/CRC/ack/retransmit -- and a
wire that never delivers surfaces a bounded :class:`TransportError`.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.mpi import Cluster, MPIConfig, TransportError
from repro.prof import Profiler
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)
RELIABLE = MPIConfig.optimized().with_(reliable_transport=True)


def _ring_exchange(nprocs, config, fault_plan=None, count=64):
    """Every rank sends `count` doubles to its successor; returns buffers."""
    cluster = Cluster(nprocs, config=config, cost=QUIET,
                      fault_plan=fault_plan)
    prof = Profiler.attach(cluster)

    def main(comm):
        succ = (comm.rank + 1) % comm.size
        pred = (comm.rank - 1) % comm.size
        send = np.arange(count, dtype=np.float64) + comm.rank * 1000
        recv = np.zeros(count)
        req = yield from comm.isend(send, dest=succ, tag=7)
        yield from comm.recv(recv, source=pred, tag=7)
        yield from req.wait()
        return recv

    results = cluster.run(main)
    return results, cluster, prof


def _expected(nprocs, count=64):
    return [np.arange(count, dtype=np.float64) + ((r - 1) % nprocs) * 1000
            for r in range(nprocs)]


def test_fault_free_reliable_run_has_zero_retransmits():
    results, _, prof = _ring_exchange(4, RELIABLE)
    for got, want in zip(results, _expected(4)):
        assert np.array_equal(got, want)
    assert prof.metrics.counter("repro_retransmits_total").total == 0
    assert prof.metrics.counter("repro_checksum_failures_total").total == 0


@pytest.mark.parametrize("kind", ["drop", "corrupt", "duplicate"])
def test_payload_faults_are_masked(kind):
    plan = FaultPlan(seed=5)
    getattr(plan, kind)(probability=1.0, nth=2)  # fault the 2nd transfer
    results, cluster, prof = _ring_exchange(4, RELIABLE, fault_plan=plan)
    for got, want in zip(results, _expected(4)):
        assert np.array_equal(got, want)
    assert cluster.fault_injector.injected >= 1
    if kind in ("drop", "corrupt"):
        assert prof.metrics.counter("repro_retransmits_total").total >= 1
    if kind == "corrupt":
        assert prof.metrics.counter(
            "repro_checksum_failures_total").total >= 1


def test_probabilistic_loss_is_masked_and_bounded():
    plan = FaultPlan(seed=11).drop(probability=0.2).corrupt(probability=0.1)
    results, _, prof = _ring_exchange(6, RELIABLE, fault_plan=plan)
    for got, want in zip(results, _expected(6)):
        assert np.array_equal(got, want)
    retrans = prof.metrics.counter("repro_retransmits_total").total
    assert retrans <= (RELIABLE.max_retransmits - 1) * 6 * 2  # msgs + acks


def test_total_blackout_raises_transport_error():
    # every payload between ranks 0 and 1 is dropped, forever
    plan = FaultPlan(seed=1).drop(probability=1.0, min_bytes=1)
    cluster = Cluster(2, config=RELIABLE, cost=QUIET, fault_plan=plan)

    def main(comm):
        buf = np.zeros(4)
        if comm.rank == 0:
            yield from comm.send(np.ones(4), dest=1)
        else:
            yield from comm.recv(buf, source=0)
        return True

    outcomes = cluster.run(main, return_exceptions=True)
    assert any(isinstance(o, TransportError) for o in outcomes)
    exc = next(o for o in outcomes if isinstance(o, TransportError))
    assert exc.attempts == RELIABLE.max_retransmits


def test_transport_results_identical_to_fault_free():
    """The lossy reliable run delivers byte-identical application data."""
    clean, _, _ = _ring_exchange(5, RELIABLE)
    plan = FaultPlan(seed=9).drop(probability=0.3).duplicate(probability=0.2)
    lossy, _, _ = _ring_exchange(5, RELIABLE, fault_plan=plan)
    for a, b in zip(clean, lossy):
        assert np.array_equal(a, b)


def test_default_config_path_untouched_by_fault_machinery():
    """Without reliable_transport and without a plan, elapsed time and
    results match a run that never imported the faults package state."""
    cfg = MPIConfig.optimized()
    r1, c1, _ = _ring_exchange(4, cfg)
    r2, c2, _ = _ring_exchange(4, cfg, fault_plan=None)
    assert c1.elapsed == c2.elapsed
    for a, b in zip(r1, r2):
        assert np.array_equal(a, b)


def test_delay_spike_slows_but_preserves_data():
    cfg = MPIConfig.optimized()
    clean, c_clean, _ = _ring_exchange(3, cfg)
    plan = FaultPlan(seed=2).delay_spike(delay=5e-3, probability=1.0,
                                         min_bytes=1)
    slow, c_slow, _ = _ring_exchange(3, cfg, fault_plan=plan)
    for a, b in zip(clean, slow):
        assert np.array_equal(a, b)
    # the 5 ms NIC stall dominates the sub-10 us clean exchange
    assert c_slow.elapsed > 5e-3 > 100 * c_clean.elapsed


def test_degrade_scales_wire_time():
    cfg = MPIConfig.optimized()
    _, c_clean, _ = _ring_exchange(3, cfg, count=4096)
    plan = FaultPlan(seed=2).degrade(scale=8.0, probability=1.0, min_bytes=1)
    _, c_slow, _ = _ring_exchange(3, cfg, fault_plan=plan, count=4096)
    assert c_slow.elapsed > c_clean.elapsed
