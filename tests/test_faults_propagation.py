"""Failure propagation: crashes surface uniformly, never as deadlocks.

The crash invariant (docs/FAULTS.md): an injected crash during any
registered collective algorithm raises :class:`RankFailedError` naming the
dead rank on *every* surviving rank.  Plus ULFM-style recovery:
``revoke`` / ``shrink`` / ``agree``.
"""

import numpy as np
import pytest

from repro.datatypes import DOUBLE, TypedBuffer
from repro.faults import FaultPlan
from repro.mpi import (
    Cluster,
    CommRevokedError,
    MPIConfig,
    RankFailedError,
)
from repro.mpi.algorithms import REGISTRY
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def _survivor_errors(outcomes, victim):
    for rank, out in enumerate(outcomes):
        assert isinstance(out, RankFailedError), \
            f"rank {rank}: expected RankFailedError, got {out!r}"
        assert out.rank == victim


@pytest.mark.parametrize("algorithm", REGISTRY.names("allgatherv"))
def test_crash_during_allgatherv_propagates(algorithm):
    n = 8  # power of two: every algorithm applies
    victim = 3
    plan = FaultPlan(seed=4).crash(victim, at_op=3)
    cluster = Cluster(n, config=MPIConfig.optimized(), cost=QUIET,
                      fault_plan=plan)
    counts = [2] * n
    counts[0] = 300
    total = sum(counts)

    def main(comm):
        send = np.full(counts[comm.rank], float(comm.rank))
        recv = np.zeros(total)
        for _ in range(4):
            yield from comm.allgatherv(send, recv, counts,
                                       algorithm=algorithm)
        return recv

    outcomes = cluster.run(main, return_exceptions=True)
    _survivor_errors(outcomes, victim)
    assert victim in cluster.failed_ranks


@pytest.mark.parametrize("algorithm", REGISTRY.names("alltoallw"))
def test_crash_during_alltoallw_propagates(algorithm):
    n = 6
    victim = 2
    plan = FaultPlan(seed=4).crash(victim, at_op=4)
    cluster = Cluster(n, config=MPIConfig.optimized(), cost=QUIET,
                      fault_plan=plan)

    def main(comm):
        count = 16
        sendbuf = np.full((n, count), float(comm.rank))
        recvbuf = np.zeros((n, count))
        sendspecs = [TypedBuffer(sendbuf, DOUBLE, count,
                                 offset_bytes=p * count * 8)
                     for p in range(n)]
        recvspecs = [TypedBuffer(recvbuf, DOUBLE, count,
                                 offset_bytes=p * count * 8)
                     for p in range(n)]
        for _ in range(4):
            yield from comm.alltoallw(sendspecs, recvspecs,
                                      algorithm=algorithm)
        return recvbuf

    outcomes = cluster.run(main, return_exceptions=True)
    _survivor_errors(outcomes, victim)


def test_crash_during_barrier_and_allreduce():
    victim = 1
    plan = FaultPlan(seed=0).crash(victim, at_time=1e-7)
    cluster = Cluster(4, config=MPIConfig.optimized(), cost=QUIET,
                      fault_plan=plan)

    def main(comm):
        for _ in range(20):
            yield from comm.barrier()
            yield from comm.allreduce(1, op=lambda a, b: a + b)
        return True

    outcomes = cluster.run(main, return_exceptions=True)
    _survivor_errors(outcomes, victim)


def test_send_to_failed_rank_raises():
    plan = FaultPlan(seed=0).crash(1, at_time=0.0)
    cluster = Cluster(3, config=MPIConfig.optimized(), cost=QUIET,
                      fault_plan=plan)

    def main(comm):
        yield from comm.cpu(1e-6)  # let the crash land first
        if comm.rank == 0:
            yield from comm.send(np.ones(4), dest=1)
        return True

    outcomes = cluster.run(main, return_exceptions=True)
    assert isinstance(outcomes[0], RankFailedError)
    assert isinstance(outcomes[1], RankFailedError)  # the victim itself
    assert outcomes[2] is True  # uninvolved rank unaffected


def test_recv_from_failed_rank_raises():
    plan = FaultPlan(seed=0).crash(2, at_time=0.0)
    cluster = Cluster(3, config=MPIConfig.optimized(), cost=QUIET,
                      fault_plan=plan)

    def main(comm):
        yield from comm.cpu(1e-6)
        if comm.rank == 0:
            buf = np.zeros(4)
            yield from comm.recv(buf, source=2)
        return True

    outcomes = cluster.run(main, return_exceptions=True)
    assert isinstance(outcomes[0], RankFailedError)


def test_shrink_then_continue():
    """Survivors shrink and keep doing collectives on the new comm."""
    victim = 2
    plan = FaultPlan(seed=0).crash(victim, at_op=2)
    cluster = Cluster(5, config=MPIConfig.optimized(), cost=QUIET,
                      fault_plan=plan)

    def main(comm):
        try:
            for _ in range(10):
                yield from comm.barrier()
        except RankFailedError:
            comm = yield from comm.shrink()
            assert comm.size == 4
            total = yield from comm.allreduce(1, op=lambda a, b: a + b)
            return total
        return "no failure seen"

    outcomes = cluster.run(main, return_exceptions=True)
    for rank, out in enumerate(outcomes):
        if rank == victim:
            assert isinstance(out, RankFailedError)
        else:
            assert out == 4


def test_agree_after_failure():
    victim = 1
    plan = FaultPlan(seed=0).crash(victim, at_op=2)
    cluster = Cluster(4, config=MPIConfig.optimized(), cost=QUIET,
                      fault_plan=plan)

    def main(comm):
        try:
            for _ in range(10):
                yield from comm.barrier()
        except RankFailedError:
            flag = yield from comm.agree(comm.rank != 0)
            return flag
        return None

    outcomes = cluster.run(main, return_exceptions=True)
    for rank, out in enumerate(outcomes):
        if rank != victim:
            assert out is False  # logical AND across survivors


def test_revoked_comm_rejects_new_operations():
    cluster = Cluster(3, config=MPIConfig.optimized(), cost=QUIET)

    def main(comm):
        if comm.rank == 0:
            comm.revoke()
        yield from comm.cpu(1e-6)
        try:
            yield from comm.barrier()
        except (CommRevokedError, RankFailedError) as exc:
            return type(exc).__name__
        return "not revoked"

    outcomes = cluster.run(main)
    assert outcomes == ["CommRevokedError"] * 3


def test_hang_with_detector_upgrades_to_failure():
    plan = FaultPlan(seed=0).hang(1, at_time=1e-6, detect_after=1e-4)
    cluster = Cluster(3, config=MPIConfig.optimized(), cost=QUIET,
                      fault_plan=plan)

    def main(comm):
        for _ in range(50):
            yield from comm.barrier()
        return True

    outcomes = cluster.run(main, return_exceptions=True)
    assert isinstance(outcomes[0], RankFailedError)
    assert outcomes[0].rank == 1
    assert isinstance(outcomes[2], RankFailedError)
    assert 1 in cluster.failed_ranks


def test_rank_failures_metric_counts():
    from repro.prof import Profiler

    plan = FaultPlan(seed=0).crash(1, at_time=1e-7)
    cluster = Cluster(3, config=MPIConfig.optimized(), cost=QUIET,
                      fault_plan=plan)
    prof = Profiler.attach(cluster)

    def main(comm):
        for _ in range(5):
            yield from comm.barrier()
        return True

    cluster.run(main, return_exceptions=True)
    assert prof.metrics.counter("repro_rank_failures_total").total == 1
    assert prof.metrics.counter("repro_faults_injected_total").total >= 1
