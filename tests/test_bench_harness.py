"""Tests for the benchmark harness plumbing (FigureData, formatting)."""

import pytest

from repro.bench.harness import FigureData, improvement, print_figure


def test_add_row_and_columns():
    fig = FigureData("F", "title", ["a", "b"])
    fig.add_row(1, 2.0)
    fig.add_row(3, 4.0)
    assert fig.column("a") == [1, 3]
    assert fig.column("b") == [2.0, 4.0]
    assert fig.as_dict() == {"a": [1, 3], "b": [2.0, 4.0]}


def test_row_arity_validated():
    fig = FigureData("F", "title", ["a", "b"])
    with pytest.raises(ValueError):
        fig.add_row(1)
    with pytest.raises(ValueError):
        fig.add_row(1, 2, 3)


def test_unknown_column_raises():
    fig = FigureData("F", "title", ["a"])
    with pytest.raises(ValueError):
        fig.column("nope")


def test_improvement():
    assert improvement(100.0, 50.0) == pytest.approx(50.0)
    assert improvement(100.0, 100.0) == 0.0
    assert improvement(100.0, 150.0) == pytest.approx(-50.0)
    assert improvement(0.0, 5.0) == 0.0  # guarded


def test_print_figure_renders_aligned_table(capsys):
    fig = FigureData("FigX", "demo", ["name", "value"],
                     notes=["a note"])
    fig.add_row("alpha", 1.2345)
    fig.add_row("b", 1234.5)
    text = print_figure(fig)
    out = capsys.readouterr().out
    assert text in out
    lines = text.splitlines()
    assert lines[0] == "== FigX: demo =="
    assert "name" in lines[1] and "value" in lines[1]
    assert lines[-1].strip() == "note: a note"
    # numeric formatting: small floats keep digits, big ones round
    assert "1.23" in text
    assert "1234" in text


def test_format_zero_and_small():
    fig = FigureData("F", "t", ["v"])
    fig.add_row(0.0)
    fig.add_row(0.00012345)
    text = print_figure(fig)
    assert "0.0001234" in text or "0.0001235" in text
