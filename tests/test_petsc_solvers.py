"""Tests for GMRES, Chebyshev and the Jacobi/BlockJacobi preconditioners."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import (
    CG,
    DMDA,
    GMRES,
    BlockJacobiPC,
    Chebyshev,
    JacobiPC,
    Laplacian,
    Layout,
    PETScError,
    Vec,
)
from repro.petsc.aij import AIJMat
from repro.petsc.pc import operator_diagonal
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def build_laplacian_aij(comm, n):
    """1-D Dirichlet Laplacian rows owned naturally."""
    lay = Layout(comm.size, n)
    A = AIJMat(comm, lay)
    h2 = float(n + 1) ** 2
    start, end = lay.start(comm.rank), lay.end(comm.rank)
    for i in range(start, end):
        A.set_value(i, i, 2.0 * h2)
        if i > 0:
            A.set_value(i, i - 1, -h2)
        if i < n - 1:
            A.set_value(i, i + 1, -h2)
    return lay, A


@pytest.mark.parametrize("nranks", [1, 4])
def test_gmres_solves_spd_system(nranks):
    cluster = make_cluster(nranks)

    def main(comm):
        da = DMDA(comm, (16, 16))
        op = Laplacian(da)
        b = da.create_global_vec()
        b.local[:] = 1.0
        x = da.create_global_vec()
        result = yield from GMRES(op, b, x, restart=20, rtol=1e-8, maxits=300)
        r = da.create_global_vec()
        yield from op.residual(b, x, r)
        true_norm = yield from r.norm()
        return result, true_norm

    for result, true_norm in cluster.run(main):
        assert result.converged, result.residual_norms[-5:]
        assert true_norm < 1e-6


def test_gmres_nonsymmetric_system():
    """GMRES handles a nonsymmetric (convection-diffusion-ish) AIJ matrix."""
    n = 24
    cluster = make_cluster(3)

    def main(comm):
        lay = Layout(comm.size, n)
        A = AIJMat(comm, lay)
        start, end = lay.start(comm.rank), lay.end(comm.rank)
        for i in range(start, end):
            A.set_value(i, i, 4.0)
            if i > 0:
                A.set_value(i, i - 1, -2.0)  # asymmetric off-diagonals
            if i < n - 1:
                A.set_value(i, i + 1, -1.0)
        yield from A.assemble()
        b = Vec(comm, lay)
        b.local[:] = 1.0
        x = Vec(comm, lay)
        result = yield from GMRES(A, b, x, restart=15, rtol=1e-10, maxits=200)
        return result, x.local.copy()

    results = cluster.run(main)
    assert results[0][0].converged
    got = np.concatenate([r[1] for r in results])
    M = np.zeros((n, n))
    for i in range(n):
        M[i, i] = 4.0
        if i > 0:
            M[i, i - 1] = -2.0
        if i < n - 1:
            M[i, i + 1] = -1.0
    assert np.allclose(got, np.linalg.solve(M, np.ones(n)), atol=1e-7)


def test_gmres_with_jacobi_pc_fewer_iterations():
    cluster = make_cluster(2)

    def main(comm):
        lay, A = build_laplacian_aij(comm, 64)
        yield from A.assemble()
        b = Vec(comm, lay)
        b.local[:] = 1.0
        x1 = Vec(comm, lay)
        plain = yield from GMRES(A, b, x1, restart=64, rtol=1e-8, maxits=400)
        x2 = Vec(comm, lay)
        pc = BlockJacobiPC(A)
        prec = yield from GMRES(A, b, x2, restart=64, rtol=1e-8, maxits=400, pc=pc)
        return plain, prec, float(np.max(np.abs(x1.local - x2.local)))

    plain, prec, diff = cluster.run(main)[0]
    assert plain.converged and prec.converged
    assert prec.iterations < plain.iterations
    assert diff < 1e-5


def test_chebyshev_converges_with_good_bounds():
    cluster = make_cluster(2)
    n = 32

    def main(comm):
        lay, A = build_laplacian_aij(comm, n)
        yield from A.assemble()
        h2 = float(n + 1) ** 2
        lmin = 2 * h2 * (1 - np.cos(np.pi / (n + 1)))
        lmax = 2 * h2 * (1 - np.cos(np.pi * n / (n + 1)))
        b = Vec(comm, lay)
        b.local[:] = 1.0
        x = Vec(comm, lay)
        result = yield from Chebyshev(A, b, x, lmin, lmax, rtol=1e-8, maxits=500)
        return result

    result = cluster.run(main)[0]
    assert result.converged
    # Chebyshev should converge in O(sqrt(kappa) log 1/eps) iterations
    assert result.iterations < 300


def test_chebyshev_validates_bounds():
    cluster = make_cluster(1)

    def main(comm):
        da = DMDA(comm, (4, 4))
        op = Laplacian(da)
        b = da.create_global_vec()
        x = da.create_global_vec()
        yield from Chebyshev(op, b, x, eig_min=-1.0, eig_max=1.0)

    with pytest.raises(PETScError):
        cluster.run(main)


def test_jacobi_pc_on_stencil_laplacian():
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (16, 16))
        op = Laplacian(da)
        b = da.create_global_vec()
        b.local[:] = 1.0
        x = da.create_global_vec()
        pc = JacobiPC(op, b)
        result = yield from CG(op, b, x, rtol=1e-8, maxits=300, pc=pc)
        return result

    result = cluster.run(main)[0]
    assert result.converged


def test_operator_diagonal_laplacian_includes_boundary_terms():
    cluster = make_cluster(1)

    def main(comm):
        da = DMDA(comm, (4, 4))
        op = Laplacian(da)
        d = da.create_global_vec()
        operator_diagonal(op, d)
        yield from comm.barrier()
        return d.local.reshape(4, 4)

    diag = cluster.run(main)[0]
    h2 = 16.0
    # interior cell: 4/h^2; edge cell: 5/h^2; corner cell: 6/h^2
    assert diag[1, 1] == pytest.approx(4 * h2)
    assert diag[0, 1] == pytest.approx(5 * h2)
    assert diag[0, 0] == pytest.approx(6 * h2)


def test_block_jacobi_requires_assembled_aij():
    cluster = make_cluster(1)

    def main(comm):
        da = DMDA(comm, (4, 4))
        op = Laplacian(da)
        with pytest.raises(PETScError):
            BlockJacobiPC(op)
        lay = Layout(comm.size, 4)
        A = AIJMat(comm, lay)
        with pytest.raises(PETScError):
            BlockJacobiPC(A)
        yield from comm.barrier()
        return True

    assert cluster.run(main) == [True]


def test_block_jacobi_exact_on_one_rank():
    """With one rank, block Jacobi is a direct solve: CG converges in one
    iteration."""
    cluster = make_cluster(1)

    def main(comm):
        lay, A = build_laplacian_aij(comm, 20)
        yield from A.assemble()
        b = Vec(comm, lay)
        b.local[:] = 1.0
        x = Vec(comm, lay)
        pc = BlockJacobiPC(A)
        result = yield from CG(A, b, x, rtol=1e-10, maxits=10, pc=pc)
        return result

    result = cluster.run(main)[0]
    assert result.converged
    assert result.iterations <= 2
