"""Tests for the outlier-ratio detection (paper Eq. 1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.outlier import detection_cpu_seconds, has_outliers, outlier_ratio
from repro.util import CostModel

COST = CostModel()


def test_uniform_set_has_ratio_one():
    assert outlier_ratio([100] * 64, 0.125) == pytest.approx(1.0)


def test_single_large_outlier_detected():
    volumes = [8] * 63 + [32768]
    assert outlier_ratio(volumes, 0.125) > 100
    assert has_outliers(volumes, COST)


def test_uniform_not_detected():
    assert not has_outliers([4096] * 64, COST)


def test_mild_variation_not_detected():
    volumes = [100 + (i % 7) for i in range(64)]
    assert not has_outliers(volumes, COST)


def test_all_zero_bulk_with_nonzero_max():
    volumes = [0] * 31 + [1024]
    assert outlier_ratio(volumes, 0.125) == math.inf
    assert has_outliers(volumes, COST)


def test_all_zero_set():
    assert outlier_ratio([0] * 8, 0.125) == 1.0
    assert not has_outliers([0] * 8, COST)


def test_small_sets():
    assert outlier_ratio([5], 0.125) == 1.0
    # two elements: one may be an outlier
    assert outlier_ratio([1, 1000], 0.125) == 1000.0


def test_singleton_skips_kselect_entirely():
    """n==1 short-circuits BEFORE any Floyd-Rivest pass, so the stats
    (and the adaptive policy's cost accounting) record zero work."""
    from repro.util.kselect import SelectStats

    stats = SelectStats()
    assert outlier_ratio([12345], 0.125, stats=stats) == 1.0
    assert stats.calls == 0
    assert stats.pivot_passes == 0
    # a two-element set does run k-select and the stats show it
    stats = SelectStats()
    assert outlier_ratio([1, 2], 0.125, stats=stats) == 2.0
    assert stats.calls == 2


def test_empty_set_rejected():
    with pytest.raises(ValueError):
        outlier_ratio([], 0.125)


@pytest.mark.parametrize("frac", [0.0, 1.0, -0.5, 2.0])
def test_invalid_fraction_rejected(frac):
    with pytest.raises(ValueError):
        outlier_ratio([1, 2, 3], frac)


def test_fraction_bounds_number_of_outliers():
    # 8 ranks with fraction 0.25: up to 2 outliers tolerated in the bulk edge
    volumes = [10] * 6 + [10_000, 10_000]
    assert outlier_ratio(volumes, 0.25) == pytest.approx(1000.0)
    # 3 heavy ranks exceed the fraction: the edge lands on a heavy one
    volumes = [10] * 5 + [10_000] * 3
    assert outlier_ratio(volumes, 0.25) == pytest.approx(1.0)


def test_detection_cost_linear():
    assert detection_cpu_seconds(128) == pytest.approx(2 * detection_cpu_seconds(64))


@given(st.lists(st.integers(0, 10**9), min_size=1, max_size=200))
@settings(max_examples=100)
def test_ratio_at_least_one_or_inf(volumes):
    r = outlier_ratio(volumes, 0.125)
    assert r >= 1.0 or r == math.inf


@given(st.lists(st.integers(1, 10**6), min_size=2, max_size=100), st.integers(2, 10))
@settings(max_examples=100)
def test_scaling_invariance(volumes, scale):
    """Multiplying every volume by a constant leaves the ratio unchanged."""
    r1 = outlier_ratio(volumes, 0.125)
    r2 = outlier_ratio([v * scale for v in volumes], 0.125)
    assert r2 == pytest.approx(r1)
