"""Unit tests for datatype constructors and flattening."""

import pytest

from repro.datatypes import (
    BYTE,
    DOUBLE,
    INT,
    Contiguous,
    DatatypeError,
    HIndexed,
    HVector,
    Indexed,
    IndexedBlock,
    Resized,
    Struct,
    Subarray,
    Vector,
)


def blocks_of(dt):
    bl = dt.flatten()
    return list(zip(bl.offsets.tolist(), bl.lengths.tolist()))


def test_primitive_double():
    assert DOUBLE.size == 8
    assert DOUBLE.extent == 8
    assert blocks_of(DOUBLE) == [(0, 8)]
    assert DOUBLE.is_contiguous()


def test_contiguous_merges_to_single_block():
    dt = Contiguous(10, DOUBLE)
    assert dt.size == 80
    assert dt.extent == 80
    assert blocks_of(dt) == [(0, 80)]
    assert dt.is_contiguous()


def test_paper_figure_5_and_6_column_type():
    """The 8x8 matrix of 3-double elements; first column = Vector(8,1,8,elem).

    Figure 5 of the paper shows the column blocks at byte offsets
    0, 192, 384, ... (stride 8 elements x 24 bytes)."""
    element = Contiguous(3, DOUBLE)
    column = Vector(8, 1, 8, element)
    assert element.size == 24
    assert column.size == 8 * 24
    got = blocks_of(column)
    assert got == [(192 * i, 24) for i in range(8)]
    assert column.num_blocks == 8
    assert not column.is_contiguous()


def test_vector_blocklength_gt_one():
    dt = Vector(3, 2, 5, DOUBLE)
    assert dt.size == 3 * 2 * 8
    assert blocks_of(dt) == [(0, 16), (40, 16), (80, 16)]
    assert dt.extent == (2 * 5 + 2) * 8


def test_vector_stride_equals_blocklength_is_contiguous():
    dt = Vector(4, 3, 3, DOUBLE)
    assert blocks_of(dt) == [(0, 96)]


def test_vector_overlap_rejected():
    with pytest.raises(DatatypeError):
        Vector(2, 4, 2, DOUBLE)


def test_hvector_bytes_stride():
    dt = HVector(3, 1, 100, INT)
    assert blocks_of(dt) == [(0, 4), (100, 4), (200, 4)]
    assert dt.extent == 204


def test_indexed_definition_order_preserved():
    dt = Indexed([1, 2], [5, 0], DOUBLE)
    # definition order: block at displacement 5 comes first in the pack stream
    assert blocks_of(dt) == [(40, 8), (0, 16)]
    assert dt.size == 24


def test_indexed_zero_blocklengths_dropped():
    dt = Indexed([2, 0, 1], [0, 50, 4], DOUBLE)
    assert blocks_of(dt) == [(0, 16), (32, 8)]


def test_indexed_all_zero_rejected():
    with pytest.raises(DatatypeError):
        Indexed([0, 0], [0, 1], DOUBLE)


def test_indexed_adjacent_blocks_merge():
    dt = Indexed([2, 3], [0, 2], DOUBLE)
    assert blocks_of(dt) == [(0, 40)]


def test_hindexed():
    dt = HIndexed([2, 1], [16, 0], DOUBLE)
    assert blocks_of(dt) == [(16, 16), (0, 8)]


def test_indexed_block():
    dt = IndexedBlock(2, [0, 4, 8], INT)
    assert blocks_of(dt) == [(0, 8), (16, 8), (32, 8)]
    assert dt.size == 24


def test_struct_interlaced_fields():
    # one "grid point" with interlaced (pressure, temperature) doubles and
    # an int tag, like PETSc's interlaced field storage (paper section 2.1)
    dt = Struct([1, 1, 1], [0, 8, 16], [DOUBLE, DOUBLE, INT])
    assert dt.size == 20
    assert blocks_of(dt) == [(0, 20)]  # adjacent fields merge


def test_struct_with_gaps():
    dt = Struct([1, 1], [0, 16], [INT, INT])
    assert blocks_of(dt) == [(0, 4), (16, 4)]
    assert dt.extent == 20


def test_struct_length_mismatch_rejected():
    with pytest.raises(DatatypeError):
        Struct([1], [0, 8], [DOUBLE, DOUBLE])


def test_subarray_2d_interior():
    # 4x4 array of doubles, select the middle 2x2
    dt = Subarray([4, 4], [2, 2], [1, 1], DOUBLE)
    assert dt.size == 4 * 8
    assert blocks_of(dt) == [(40, 16), (72, 16)]
    assert dt.extent == 16 * 8


def test_subarray_full_is_contiguous():
    dt = Subarray([3, 5], [3, 5], [0, 0], DOUBLE)
    assert blocks_of(dt) == [(0, 120)]


def test_subarray_column():
    dt = Subarray([4, 4], [4, 1], [0, 2], DOUBLE)
    assert blocks_of(dt) == [(16, 8), (48, 8), (80, 8), (112, 8)]


def test_subarray_3d_face():
    # 3x3x3 doubles, the k=0 face (all i, all j, k fixed)
    dt = Subarray([3, 3, 3], [3, 3, 1], [0, 0, 0], DOUBLE)
    assert dt.num_blocks == 9
    assert dt.size == 9 * 8


def test_subarray_fortran_order():
    # F order: first dimension contiguous
    dt = Subarray([4, 4], [1, 4], [2, 0], DOUBLE, order="F")
    # same as C-order Subarray([4,4],[4,1],[0,2]) of the transposed view
    assert dt.num_blocks == 4
    assert dt.size == 32


def test_subarray_validation():
    with pytest.raises(DatatypeError):
        Subarray([4, 4], [3, 3], [2, 2], DOUBLE)  # start+sub > size
    with pytest.raises(DatatypeError):
        Subarray([4], [0], [0], DOUBLE)
    with pytest.raises(DatatypeError):
        Subarray([4], [2], [0], DOUBLE, order="X")


def test_resized_changes_extent_only():
    dt = Resized(INT, 16)
    assert dt.size == 4
    assert dt.extent == 16
    tiled = Contiguous(3, dt)
    assert blocks_of(tiled) == [(0, 4), (16, 4), (32, 4)]


def test_nested_vector_of_vectors():
    # columns of a 2-D matrix where each element is itself strided
    inner = Vector(2, 1, 2, DOUBLE)  # 2 doubles with a 1-double gap
    outer = HVector(3, 1, 64, inner)
    assert outer.size == 3 * 16
    assert outer.num_blocks == 6


def test_contiguous_of_column_counts_blocks():
    element = Contiguous(3, DOUBLE)
    column = Vector(8, 1, 8, element)
    two_columns = Contiguous(2, column)
    # the second copy starts exactly at the column's extent boundary, which
    # abuts the last block of the first copy -- they merge (15, not 16)
    assert two_columns.num_blocks == 15
    assert two_columns.size == 2 * column.size


def test_count_validation():
    with pytest.raises(DatatypeError):
        Contiguous(0, DOUBLE)
    with pytest.raises(DatatypeError):
        Vector(0, 1, 1, DOUBLE)
    with pytest.raises(DatatypeError):
        Contiguous(2, "not a type")


def test_byte_type():
    assert BYTE.size == 1
    dt = Contiguous(7, BYTE)
    assert blocks_of(dt) == [(0, 7)]
