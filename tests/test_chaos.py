"""Chaos harness smoke: seeded scenarios hold their invariants end-to-end."""

import json

from repro.faults import run_chaos
from repro.faults.chaos import SCENARIOS


def test_scenario_registry_names():
    assert {"fem_lossy", "agv_lossy", "crash_allgatherv", "crash_alltoallw",
            "checkpoint_restart", "deadlock_diagnosis",
            "assembly_plan_disagree"} <= set(SCENARIOS)


def test_chaos_smoke_single_seed():
    report = run_chaos(seeds=(3,), nprocs=4,
                       scenarios=("fem_lossy", "deadlock_diagnosis",
                                  "checkpoint_restart"))
    assert report.ok, report.summary()
    assert len(report.runs) == 3
    for run in report.runs:
        assert run.seed == 3
    # the report serializes to JSON for the CI artifact
    payload = json.loads(report.to_json())
    assert payload["ok"] is True
    assert len(payload["runs"]) == 3


def test_chaos_crash_scenario_smoke():
    report = run_chaos(seeds=(1,), nprocs=4, scenarios=("crash_allgatherv",))
    assert report.ok, report.summary()


def test_chaos_assembly_plan_disagree_smoke():
    report = run_chaos(seeds=(2,), nprocs=4,
                       scenarios=("assembly_plan_disagree",))
    assert report.ok, report.summary()
    (run,) = report.runs
    assert run.metrics["messages_cached"] < run.metrics["messages_plan_free"]
    assert run.metrics["blocked"] > 0
