"""Point-to-point messaging tests."""

import numpy as np
import pytest

from repro.datatypes import DOUBLE, TypedBuffer, Vector
from repro.mpi import ANY_SOURCE, ANY_TAG, Cluster, MPIConfig, TruncationError
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n, config=None, **kw):
    kw.setdefault("cost", QUIET)
    kw.setdefault("heterogeneous", False)
    return Cluster(n, config=config or MPIConfig.optimized(), **kw)


def test_send_recv_contiguous():
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            data = np.arange(100, dtype=np.float64)
            yield from comm.send(data, dest=1, tag=7)
            return None
        buf = np.zeros(100, dtype=np.float64)
        status = yield from comm.recv(buf, source=0, tag=7)
        return buf.copy(), status

    results = cluster.run(main)
    buf, status = results[1]
    assert np.array_equal(buf, np.arange(100, dtype=np.float64))
    assert status.source == 0 and status.tag == 7 and status.nbytes == 800
    assert cluster.elapsed > 0


def test_send_recv_noncontiguous_column():
    cluster = make_cluster(2)
    n = 32

    def main(comm):
        if comm.rank == 0:
            m = np.arange(n * n, dtype=np.float64).reshape(n, n)
            col = TypedBuffer(m, Vector(n, 1, n, DOUBLE), offset_bytes=3 * 8)
            yield from comm.send(col, dest=1)
            return m
        buf = np.zeros(n, dtype=np.float64)
        yield from comm.recv(buf, source=0)
        return buf

    m, buf = cluster.run(main)
    assert np.array_equal(buf, m[:, 3])


def test_recv_any_source_any_tag():
    cluster = make_cluster(3)

    def main(comm):
        if comm.rank != 0:
            data = np.full(4, float(comm.rank))
            yield from comm.send(data, dest=0, tag=comm.rank * 10)
            return None
        seen = []
        for _ in range(2):
            buf = np.zeros(4)
            status = yield from comm.recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
            seen.append((status.source, status.tag, buf[0]))
        return sorted(seen)

    results = cluster.run(main)
    assert results[0] == [(1, 10, 1.0), (2, 20, 2.0)]


def test_message_ordering_same_pair():
    """Messages between the same pair with the same tag arrive in order."""
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(np.array([float(i)]), dest=1, tag=0)
            return None
        got = []
        for _ in range(5):
            buf = np.zeros(1)
            yield from comm.recv(buf, source=0, tag=0)
            got.append(buf[0])
        return got

    results = cluster.run(main)
    assert results[1] == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_isend_irecv_overlap():
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            reqs = []
            for i in range(3):
                req = yield from comm.isend(np.full(8, float(i)), dest=1, tag=i)
                reqs.append(req)
            for req in reqs:
                yield from req.wait()
            return None
        bufs = [np.zeros(8) for _ in range(3)]
        reqs = [comm.irecv(bufs[i], source=0, tag=i) for i in (2, 1, 0)]
        for req in reqs:
            yield from req.wait()
        return [b[0] for b in bufs]

    results = cluster.run(main)
    assert results[1] == [0.0, 1.0, 2.0]


def test_sendrecv_pairwise_exchange():
    cluster = make_cluster(2)

    def main(comm):
        other = 1 - comm.rank
        sbuf = np.full(16, float(comm.rank))
        rbuf = np.zeros(16)
        yield from comm.sendrecv(sbuf, other, rbuf, other)
        return rbuf[0]

    results = cluster.run(main)
    assert results == [1.0, 0.0]


def test_truncation_error():
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(10), dest=1)
            return None
        buf = np.zeros(5)
        yield from comm.recv(buf, source=0)

    with pytest.raises(TruncationError):
        cluster.run(main)


def test_zero_byte_message_costs_alpha():
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.empty(0), dest=1)
            return None
        buf = np.empty(0)
        status = yield from comm.recv(buf, source=0)
        return status.nbytes

    results = cluster.run(main)
    assert results[1] == 0
    assert cluster.elapsed >= QUIET.alpha


def test_eager_send_completes_before_recv_posted():
    """A small send must not block waiting for the matching receive."""
    cluster = make_cluster(2)
    timeline = {}

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(8), dest=1)  # 64 B: eager
            timeline["send_done"] = comm.engine.now
            return None
        yield from comm.compute(1.0)  # receiver busy for a long time
        buf = np.zeros(8)
        yield from comm.recv(buf, source=0)
        timeline["recv_done"] = comm.engine.now

    cluster.run(main)
    assert timeline["send_done"] < 0.01
    assert timeline["recv_done"] >= 1.0


def test_rendezvous_send_waits_for_recv():
    """A large send cannot complete until the receive is posted."""
    cluster = make_cluster(2)
    timeline = {}

    def main(comm):
        if comm.rank == 0:
            data = np.zeros(100_000)  # 800 KB: rendezvous
            yield from comm.send(data, dest=1)
            timeline["send_done"] = comm.engine.now
            return None
        yield from comm.compute(1.0)
        buf = np.zeros(100_000)
        yield from comm.recv(buf, source=0)

    cluster.run(main)
    assert timeline["send_done"] >= 1.0


def test_noncontiguous_send_charges_search_only_in_baseline():
    n = 8192  # 64 KB column: several pipeline stages, so re-search happens

    def main(comm):
        if comm.rank == 0:
            m = np.zeros((n, 4))
            col = TypedBuffer(m, Vector(n, 1, 4, DOUBLE))
            yield from comm.send(col, dest=1)
            return None
        buf = np.zeros(n)
        yield from comm.recv(buf, source=0)

    base = make_cluster(2, MPIConfig.baseline())
    base.run(main)
    opt = make_cluster(2, MPIConfig.optimized())
    opt.run(main)
    assert base.ledgers[0].get("search") > 0
    assert opt.ledgers[0].get("search") == 0
    assert opt.ledgers[0].get("lookahead") > 0


def test_self_send():
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            req = yield from comm.isend(np.arange(4, dtype=np.float64), dest=0)
            buf = np.zeros(4)
            yield from comm.recv(buf, source=0)
            yield from req.wait()
            return buf
        if False:
            yield  # pragma: no cover -- rank 1 is passive in this test
        return None

    results = cluster.run(main)
    assert np.array_equal(results[0], np.arange(4.0))


def test_invalid_ranks_rejected():
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(1), dest=9)
        return None

    with pytest.raises(Exception):
        cluster.run(main)


def test_determinism_same_seed():
    def main(comm):
        other = 1 - comm.rank
        for _ in range(10):
            sbuf = np.zeros(100)
            rbuf = np.zeros(100)
            yield from comm.sendrecv(sbuf, other, rbuf, other)
        return None

    noisy = CostModel(cpu_noise=0.05)
    c1 = Cluster(2, config=MPIConfig.optimized(), cost=noisy, seed=3)
    c1.run(main)
    c2 = Cluster(2, config=MPIConfig.optimized(), cost=noisy, seed=3)
    c2.run(main)
    assert c1.elapsed == c2.elapsed
