"""Tests for barrier, bcast, allreduce, gather."""

import operator

import pytest

from repro.mpi import Cluster, MPIConfig
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n, **kw):
    kw.setdefault("cost", QUIET)
    kw.setdefault("heterogeneous", False)
    return Cluster(n, config=MPIConfig.optimized(), **kw)


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 13, 16])
def test_barrier_completes(n):
    cluster = make_cluster(n)

    def main(comm):
        yield from comm.barrier()
        return comm.engine.now

    results = cluster.run(main)
    assert len(results) == n


def test_barrier_synchronises():
    """No rank leaves the barrier before the slowest rank has entered it."""
    cluster = make_cluster(4)
    entered = {}
    left = {}

    def main(comm):
        yield from comm.compute(float(comm.rank))  # rank r enters at t=r
        entered[comm.rank] = comm.engine.now
        yield from comm.barrier()
        left[comm.rank] = comm.engine.now

    cluster.run(main)
    assert max(entered.values()) == pytest.approx(3.0)
    assert all(t >= 3.0 for t in left.values())


@pytest.mark.parametrize("n,root", [(1, 0), (2, 0), (5, 2), (8, 7), (9, 3)])
def test_bcast_delivers_to_all(n, root):
    cluster = make_cluster(n)

    def main(comm):
        value = {"payload": 42} if comm.rank == root else None
        result = yield from comm.bcast(value, root=root)
        return result["payload"]

    assert cluster.run(main) == [42] * n


def test_bcast_invalid_root():
    cluster = make_cluster(2)

    def main(comm):
        yield from comm.bcast(1, root=5)

    with pytest.raises(ValueError):
        cluster.run(main)


@pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 7, 8, 16, 17])
def test_allreduce_sum(n):
    cluster = make_cluster(n)

    def main(comm):
        result = yield from comm.allreduce(comm.rank + 1)
        return result

    expect = n * (n + 1) // 2
    assert cluster.run(main) == [expect] * n


@pytest.mark.parametrize("n", [2, 5, 8])
def test_allreduce_max(n):
    cluster = make_cluster(n)

    def main(comm):
        result = yield from comm.allreduce(float(comm.rank), op=max)
        return result

    assert cluster.run(main) == [float(n - 1)] * n


def test_allreduce_custom_op():
    cluster = make_cluster(4)

    def main(comm):
        result = yield from comm.allreduce(comm.rank + 1, op=operator.mul)
        return result

    assert cluster.run(main) == [24] * 4


@pytest.mark.parametrize("n,root", [(1, 0), (4, 0), (5, 4)])
def test_gather_obj(n, root):
    cluster = make_cluster(n)

    def main(comm):
        result = yield from comm.gather_obj(comm.rank * 10, root=root)
        return result

    results = cluster.run(main)
    assert results[root] == [r * 10 for r in range(n)]
    assert all(results[r] is None for r in range(n) if r != root)


def test_back_to_back_collectives_do_not_cross_match():
    cluster = make_cluster(4)

    def main(comm):
        a = yield from comm.allreduce(1)
        b = yield from comm.allreduce(comm.rank)
        yield from comm.barrier()
        c = yield from comm.bcast(comm.rank if comm.rank == 2 else None, root=2)
        return (a, b, c)

    assert cluster.run(main) == [(4, 6, 2)] * 4
