"""Unit tests for the network model."""

import pytest

from repro.simtime import Engine, NetworkModel
from repro.util import CostModel


def _quiet_cost(**kw):
    """A cost model with zero jitter for exact-time assertions."""
    return CostModel(cpu_noise=0.0, **kw)


def test_transfer_time_alpha_beta():
    cost = _quiet_cost()
    assert cost.transfer_time(0) == pytest.approx(cost.alpha)
    assert cost.transfer_time(1000) == pytest.approx(cost.alpha + 1000 * cost.beta)


def test_transfer_occupies_ports_and_advances_clock():
    eng = Engine()
    net = NetworkModel(eng, 2, cost=_quiet_cost(), heterogeneous=False)

    def proc():
        yield from net.transfer(0, 1, 1400)

    eng.spawn(proc())
    eng.run()
    assert eng.now == pytest.approx(net.cost.transfer_time(1400))
    assert net.messages_on_wire == 1
    assert net.bytes_on_wire == 1400


def test_concurrent_sends_from_same_node_serialise():
    eng = Engine()
    net = NetworkModel(eng, 3, cost=_quiet_cost(), heterogeneous=False)
    done = []

    def sender(dst):
        yield from net.transfer(0, dst, 14_000)
        done.append((dst, eng.now))

    eng.spawn(sender(1))
    eng.spawn(sender(2))
    eng.run()
    t1 = net.cost.transfer_time(14_000)
    assert done[0] == (1, pytest.approx(t1))
    assert done[1] == (2, pytest.approx(2 * t1))


def test_sends_from_different_nodes_proceed_in_parallel():
    eng = Engine()
    net = NetworkModel(eng, 4, cost=_quiet_cost(), heterogeneous=False)
    done = []

    def sender(src, dst):
        yield from net.transfer(src, dst, 14_000)
        done.append(eng.now)

    eng.spawn(sender(0, 1))
    eng.spawn(sender(2, 3))
    eng.run()
    t1 = net.cost.transfer_time(14_000)
    assert done == [pytest.approx(t1), pytest.approx(t1)]


def test_symmetric_exchange_does_not_deadlock():
    eng = Engine()
    net = NetworkModel(eng, 2, cost=_quiet_cost(), heterogeneous=False)

    def a():
        yield from net.transfer(0, 1, 100)

    def b():
        yield from net.transfer(1, 0, 100)

    eng.spawn(a())
    eng.spawn(b())
    eng.run()  # must terminate


def test_self_transfer_uses_memory_copy():
    eng = Engine()
    cost = _quiet_cost()
    net = NetworkModel(eng, 2, cost=cost, heterogeneous=False)

    def proc():
        yield from net.transfer(1, 1, 1000)

    eng.spawn(proc())
    eng.run()
    assert eng.now == pytest.approx(cost.copy_byte * 1000)


def test_rank_range_validated():
    eng = Engine()
    net = NetworkModel(eng, 2, cost=_quiet_cost())

    def proc():
        yield from net.transfer(0, 5, 10)

    eng.spawn(proc())
    with pytest.raises(ValueError):
        eng.run()


def test_heterogeneity_defaults_follow_cluster_size():
    eng = Engine()
    small = NetworkModel(eng, 32, cost=_quiet_cost())
    big = NetworkModel(eng, 64, cost=_quiet_cost())
    assert not small.heterogeneous
    assert big.heterogeneous
    assert small.speed_factor(31) == 1.0
    assert big.speed_factor(0) == 1.0
    assert big.speed_factor(63) == pytest.approx(3.6 / 2.8)


def test_cpu_seconds_scaling_and_determinism():
    cost = CostModel(cpu_noise=0.05)
    eng1 = Engine()
    eng2 = Engine()
    net1 = NetworkModel(eng1, 64, cost=cost, seed=7)
    net2 = NetworkModel(eng2, 64, cost=cost, seed=7)
    seq1 = [net1.cpu_seconds(r % 64, 1.0) for r in range(100)]
    seq2 = [net2.cpu_seconds(r % 64, 1.0) for r in range(100)]
    assert seq1 == seq2  # same seed, same sequence
    # slow-half calls are scaled up
    assert net1.cpu_seconds(63, 1.0) >= 3.6 / 2.8


def test_cpu_seconds_rejects_negative():
    eng = Engine()
    net = NetworkModel(eng, 2, cost=_quiet_cost())
    with pytest.raises(ValueError):
        net.cpu_seconds(0, -1.0)


def test_zero_cpu_time_is_free():
    eng = Engine()
    net = NetworkModel(eng, 2, cost=CostModel(cpu_noise=0.5))
    assert net.cpu_seconds(0, 0.0) == 0.0


def test_nranks_validated():
    eng = Engine()
    with pytest.raises(ValueError):
        NetworkModel(eng, 0)
