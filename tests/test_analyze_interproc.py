"""Tests for the interprocedural layer: call graph, transitive
summaries, cross-function/cross-file rule propagation, the LNT007
unused-suppression lint, deterministic emitters, and the repro-plans/1
static->runtime pre-seeding loop."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analyze.dataflow import (
    Project,
    analyze_file,
    analyze_paths,
    analyze_source,
    analyze_tree,
    compute_summaries,
    module_envs,
    strongly_connected,
)
from repro.analyze.dataflow.driver import analyze_source_set
from repro.analyze.emit import report_to_dicts, to_plans
from repro.analyze.findings import Report
from repro.analyze.suppress import collect_suppressions

TESTS = Path(__file__).parent
FIXTURES = TESTS / "fixtures"


def rules_of(source):
    report = analyze_source(textwrap.dedent(source))
    return sorted(f.rule for f in report)


def tree_rules_of(named_sources):
    report, _ = analyze_source_set(
        sorted((p, textwrap.dedent(s)) for p, s in named_sources.items()))
    return sorted((f.location, f.rule) for f in report)


# -- call graph ---------------------------------------------------------------

def test_call_edges_and_import_resolution(tmp_path):
    (tmp_path / "helpers.py").write_text(textwrap.dedent("""
        def start(comm, data):
            req = yield from comm.isend(data, 1)
            return req
    """))
    (tmp_path / "main.py").write_text(textwrap.dedent("""
        from helpers import start

        def go(comm, data):
            req = yield from start(comm, data)
            yield from req.wait()
    """))
    sources = [(str(p), p.read_text())
               for p in sorted(tmp_path.glob("*.py"))]
    project = Project(sources)
    edges = project.call_edges()
    helper = (str(tmp_path / "helpers.py"), "start")
    caller = (str(tmp_path / "main.py"), "go")
    assert edges[caller] == [helper]
    assert caller in project.function_refs()


def test_scc_orders_callees_before_callers():
    sources = [("m.py", textwrap.dedent("""
        def a():
            return b()

        def b():
            return c()

        def c():
            return 1
    """))]
    project = Project(sources)
    sccs = strongly_connected(project.function_refs(),
                              project.call_edges())
    order = [name for scc in sccs for (_path, name) in scc]
    assert order.index("c") < order.index("b") < order.index("a")


def test_mutual_recursion_converges():
    sources = [("m.py", textwrap.dedent("""
        def ping(req, n):
            if n == 0:
                yield from req.wait()
                return
            yield from pong(req, n - 1)

        def pong(req, n):
            yield from ping(req, n)
    """))]
    project = Project(sources)
    summaries = compute_summaries(project)
    env = module_envs(project, summaries)["m.py"]
    # both members of the cycle transitively wait their first parameter
    assert 0 in env["ping"].waits_params
    assert 0 in env["pong"].waits_params


# -- cross-function rule propagation ------------------------------------------

def test_request_handed_off_to_caller_is_clean():
    assert rules_of("""
        def start(comm, data):
            req = yield from comm.isend(data, 1)
            return req

        def go(comm, data):
            req = yield from start(comm, data)
            yield from req.wait()
    """) == []


def test_caller_that_drops_handed_off_request_flags_req101():
    assert rules_of("""
        def start(comm, data):
            req = yield from comm.isend(data, 1)
            return req

        def go(comm, data):
            req = yield from start(comm, data)
    """) == ["REQ101"]


def test_two_level_transitive_wait_is_clean():
    assert rules_of("""
        def finish(req):
            yield from req.wait()

        def relay(req):
            yield from finish(req)

        def go(comm, data):
            req = yield from comm.isend(data, 1)
            yield from relay(req)
    """) == []


def test_keyword_only_wait_parameter_is_clean():
    assert rules_of("""
        def finish(*, request):
            yield from request.wait()

        def go(comm, data):
            req = yield from comm.isend(data, 1)
            yield from finish(request=req)
    """) == []


def test_rank_tainted_helper_return_flags_spmd101():
    assert rules_of("""
        def parity(comm):
            return comm.rank % 2

        def go(comm):
            if parity(comm) == 0:
                yield from comm.barrier()
    """) == ["SPMD101"]


def test_cross_file_summaries_resolve_through_imports(tmp_path):
    (tmp_path / "helpers.py").write_text(textwrap.dedent("""
        def start(comm, data):
            req = yield from comm.isend(data, 1)
            return req
    """))
    (tmp_path / "main.py").write_text(textwrap.dedent("""
        from helpers import start

        def go(comm, data):
            req = yield from start(comm, data)
            yield from req.wait()
    """))
    report, _plans = analyze_paths([str(tmp_path)])
    assert sorted(f.rule for f in report) == []


def test_cross_function_fixture_pinned():
    report = analyze_file(FIXTURES / "cross_function.py")
    assert sorted(f.rule for f in report) == ["REQ101", "SPMD101"]
    by_rule = {f.rule: f for f in report}
    assert "caller_drops_handed_off_request" in by_rule["REQ101"].message
    assert "caller_of_rank_tainted_helper" in by_rule["SPMD101"].message


# -- attribute-qualified calls: self.helper(...) / mod.fn(...) ----------------

def test_call_edges_include_self_and_module_qualified(tmp_path):
    (tmp_path / "helpers.py").write_text(textwrap.dedent("""
        def finish(req):
            yield from req.wait()
    """))
    (tmp_path / "main.py").write_text(textwrap.dedent("""
        import helpers

        class Worker:
            def _step(self):
                return 1

            def run(self, comm, req):
                self._step()
                yield from helpers.finish(req)
    """))
    sources = [(str(p), p.read_text())
               for p in sorted(tmp_path.glob("*.py"))]
    project = Project(sources)
    edges = project.call_edges()
    main, helpers = str(tmp_path / "main.py"), str(tmp_path / "helpers.py")
    assert (main, "Worker.run") in project.function_refs()
    assert set(edges[(main, "Worker.run")]) == {
        (main, "Worker._step"), (helpers, "finish")}


def test_self_method_wait_is_clean():
    assert rules_of("""
        class Worker:
            def _finish(self, req):
                yield from req.wait()

            def run(self, comm, data):
                req = yield from comm.isend(data, 1)
                yield from self._finish(req)
    """) == []


def test_self_method_that_does_not_wait_flags_req101():
    assert rules_of("""
        class Worker:
            def _log(self, req):
                print(req)

            def run(self, comm, data):
                req = yield from comm.isend(data, 1)
                yield from self._log(req)
    """) == ["REQ101"]


def test_ambiguous_self_method_falls_back_to_escape():
    # two classes define _finish: no "self._finish" key is published, so
    # the call is an unknown callee and the request conservatively
    # escapes -- no REQ101 false positive either way
    assert rules_of("""
        class A:
            def _finish(self, req):
                yield from req.wait()

        class B:
            def _finish(self, req):
                print(req)

            def run(self, comm, data):
                req = yield from comm.isend(data, 1)
                yield from self._finish(req)
    """) == []


def test_self_method_returning_request_hands_off_obligation():
    assert rules_of("""
        class Chan:
            def _post(self, comm, data):
                req = comm.irecv(data, 1)
                return req

            def drain(self, comm, data):
                req = self._post(comm, data)
    """) == ["REQ101"]
    assert rules_of("""
        class Chan:
            def _post(self, comm, data):
                req = comm.irecv(data, 1)
                return req

            def drain(self, comm, data):
                req = self._post(comm, data)
                yield from req.wait()
    """) == []


def test_self_collective_helper_flags_spmd101():
    assert rules_of("""
        class Solver:
            def _sync(self, comm):
                yield from comm.barrier()

            def step(self, comm):
                if comm.rank == 0:
                    yield from self._sync(comm)
    """) == ["SPMD101"]


def test_self_collective_matched_on_other_path_is_clean():
    # the matched-collectives exemption sees through self-helper calls:
    # both sides perform the same (helper) collective
    assert rules_of("""
        class Solver:
            def _sync(self, comm):
                yield from comm.barrier()

            def step(self, comm):
                if comm.rank == 0:
                    yield from self._sync(comm)
                else:
                    yield from self._sync(comm)
    """) == []


def test_module_qualified_wait_resolves_cross_file():
    assert tree_rules_of({
        "pkg/helpers.py": """
            def finish(req):
                yield from req.wait()
        """,
        "pkg/main.py": """
            from pkg import helpers

            def go(comm, data):
                req = yield from comm.isend(data, 1)
                yield from helpers.finish(req)
        """,
    }) == []


def test_import_alias_qualified_wait_resolves_cross_file():
    assert tree_rules_of({
        "pkg/helpers.py": """
            def finish(req):
                yield from req.wait()
        """,
        "pkg/main.py": """
            import pkg.helpers as h

            def go(comm, data):
                req = yield from comm.isend(data, 1)
                yield from h.finish(req)
        """,
    }) == []


def test_module_qualified_nonwaiting_helper_flags_req101():
    assert tree_rules_of({
        "pkg/helpers.py": """
            def log(req):
                print(req)
        """,
        "pkg/main.py": """
            from pkg import helpers

            def go(comm, data):
                req = yield from comm.isend(data, 1)
                yield from helpers.log(req)
        """,
    }) == [("pkg/main.py", "REQ101")]


def test_module_qualified_tainted_return_flags_spmd101():
    assert tree_rules_of({
        "pkg/util.py": """
            def is_root(comm):
                return comm.rank == 0
        """,
        "pkg/main.py": """
            from pkg import util

            def step(comm):
                if util.is_root(comm):
                    yield from comm.barrier()
        """,
    }) == [("pkg/main.py", "SPMD101")]


def test_self_wait_offset_maps_past_the_self_parameter():
    # the waited parameter of Worker._finish is index 1 (after self);
    # call-site argument 0 must land on it, not on index 0
    project = Project([("m.py", textwrap.dedent("""
        class Worker:
            def _finish(self, req):
                yield from req.wait()
    """))])
    env = module_envs(project, compute_summaries(project))["m.py"]
    assert env["self._finish"].waits_params == {1}


# -- suppressions on decorated functions + LNT007 -----------------------------

def test_suppression_above_decorator_covers_the_def():
    # LNT004 anchors at the default expression on the ``def`` line; the
    # comment above the decorator must still reach it (and count as
    # used, so no LNT007 either)
    assert tree_rules_of({"m.py": """
        # shared sentinel on purpose  # analyze: ignore[LNT004]
        @staticmethod
        def f(x=[]):
            return x
    """}) == []


def test_suppression_on_decorator_line_covers_the_def():
    src = textwrap.dedent("""
        @deco  # analyze: ignore[LNT001]
        def f():
            pass
    """)
    import ast as _ast

    supp = collect_suppressions(src, _ast.parse(src))
    def_line = 3  # the 'def f():' line
    assert supp.is_suppressed("LNT001", def_line)


def test_unused_suppression_flags_lnt007():
    assert tree_rules_of({"m.py": """
        def f(comm, data):
            yield from comm.send(data, 1)  # analyze: ignore[LNT003]
    """}) == [("m.py", "LNT007")]


def test_used_suppression_is_not_lnt007():
    assert tree_rules_of({"m.py": """
        def f(comm):
            if comm.rank == 0:
                yield from comm.barrier()  # analyze: ignore[SPMD101]
    """}) == []


def test_runtime_code_suppressions_never_flag_lnt007():
    # DLK/SIG/... passes did not run here: silence is not staleness
    assert tree_rules_of({"m.py": """
        def f(comm):
            yield from comm.barrier()  # analyze: ignore[DLK001]
    """}) == []


def test_bare_ignore_never_flags_lnt007():
    assert tree_rules_of({"m.py": """
        def f(comm):
            yield from comm.barrier()  # analyze: ignore
    """}) == []


def test_unknown_code_always_flags_lnt007():
    findings = tree_rules_of({"m.py": """
        def f(comm):
            yield from comm.barrier()  # analyze: ignore[NOPE999]
    """})
    assert findings == [("m.py", "LNT007")]


# -- deterministic emitters ---------------------------------------------------

def test_report_dicts_are_sorted_and_deduped():
    report = Report()
    # inserted out of order, with an exact duplicate
    report.add("SPMD101", "b", location="z.py", line=9, key=("k1",))
    report.add("LNT001", "a", location="a.py", line=5, key=("k2",))
    report.add("LNT001", "a", location="a.py", line=5, key=("k2",))
    report.add("LNT001", "a", location="a.py", line=2, key=("k3",))
    dicts = report_to_dicts(report)
    assert [(d["path"], d["line"]) for d in dicts] == \
        [("a.py", 2), ("a.py", 5), ("z.py", 9)]


def test_to_plans_schema_and_determinism():
    source = textwrap.dedent("""
        def exchange(comm, n):
            counts = [4096] + [1] * 7
            recv = object()
            send = object()
            yield from comm.allgatherv(send, recv, counts)
    """)
    plans1, plans2 = [], []
    analyze_source(source, "m.py", plans=plans1)
    analyze_source(source, "m.py", plans=plans2)
    doc1, doc2 = to_plans(plans1), to_plans(plans2)
    assert doc1 == doc2
    doc = json.loads(doc1)
    assert doc["schema"] == "repro-plans/1"
    (key, bucket), = doc["buckets"].items()
    assert key.startswith("allgatherv|p8|")
    assert key.endswith("|outlier")
    assert bucket["algorithm"]  # adaptive prediction present
    assert bucket["sites"] == 1


def test_to_plans_disagreeing_sites_emit_null_algorithm():
    plans = []
    analyze_source(textwrap.dedent("""
        def a(comm):
            counts = [4096] + [1] * 7
            yield from comm.allgatherv(object(), object(), counts)
    """), "m.py", plans=plans)
    # same bucket, forged disagreement
    import copy

    other = copy.deepcopy(plans[0])
    other.decisions = {"adaptive": "ring"}
    plans[0].decisions = {"adaptive": "recursive_doubling"}
    other.line = plans[0].line + 10
    doc = json.loads(to_plans(plans + [other]))
    (bucket,) = doc["buckets"].values()
    assert bucket["algorithm"] is None
    assert bucket["sites"] == 2


# -- repro-plans/1 pre-seeding the autotuner ----------------------------------

PLANS_DOC = {
    "schema": "repro-plans/1",
    "plans": [],
    "buckets": {
        "allgatherv|p8|b15|outlier": {
            "algorithm": "dissemination", "profile": "outlier", "sites": 1},
        "allgatherv|p8|b6|uniform": {
            "algorithm": None, "profile": "uniform", "sites": 2},
    },
}


def test_preseed_seeds_untrained_buckets_only():
    from repro.mpi.algorithms.tuning import TuningTable

    table = TuningTable()
    table.record("allgatherv|p8|b15|outlier", {"ring": 2e-6})
    seeded = table.preseed(PLANS_DOC)
    assert seeded == 0  # trained bucket wins; null-algorithm bucket skipped
    fresh = TuningTable()
    assert fresh.preseed(PLANS_DOC) == 1
    assert fresh.lookup("allgatherv|p8|b15|outlier") == "dissemination"
    assert fresh.source("allgatherv|p8|b15|outlier") == "static"
    with pytest.raises(ValueError, match="repro-plans/1"):
        fresh.preseed({"schema": "nope"})


def test_measurement_upgrades_static_entry():
    from repro.mpi.algorithms.tuning import TuningTable

    table = TuningTable()
    table.preseed(PLANS_DOC)
    key = "allgatherv|p8|b15|outlier"
    table.record(key, {"ring": 1e-6, "dissemination": 2e-6})
    assert table.source(key) == "measured"
    assert table.lookup(key) == "ring"


def test_autotuned_policy_reports_static_reason():
    from repro.mpi import MPIConfig
    from repro.mpi.algorithms import (
        AutotunedPolicy, SelectionContext, TuningTable, bucket_key,
    )

    config = MPIConfig.optimized().with_(selection_policy="autotuned")
    table = TuningTable()
    ctx = SelectionContext(collective="allgatherv", size=8,
                           volumes=[4096] + [1] * 7)
    doc = {"schema": "repro-plans/1", "plans": [], "buckets": {
        bucket_key(ctx): {"algorithm": "ring", "profile": "outlier",
                          "sites": 1}}}
    table.preseed(doc)
    pol = AutotunedPolicy(config, table=table)
    decision = pol.decide(ctx)
    assert decision.reason == "table:static"
    assert decision.algorithm == "ring"
    # the cache remembers the reason verbatim
    assert pol.decide(ctx).reason == "table:static"


def test_preseeded_autotune_skips_warmups():
    """The static->runtime contract: pre-seeding with the tree's own
    extracted plans reaches a table with strictly fewer warmup
    simulations than a cold sweep."""
    from repro.mpi.algorithms.autotune import (
        AutotuneStats, autotune, count_warmup_runs,
    )

    plans = []
    analyze_tree([str(TESTS.parent / "src"), str(TESTS.parent / "examples"),
                  str(TESTS.parent / "tests")], Report(), plans)
    doc = json.loads(to_plans(plans))
    assert doc["buckets"], "tree should yield at least one static bucket"

    stats = AutotuneStats()
    table = autotune(quick=True, preseed=doc, stats=stats)
    cold = count_warmup_runs(quick=True)
    assert stats.preseeded_keys  # something was seeded
    assert stats.scenarios_skipped >= 1
    assert stats.warmup_runs < cold
    # skipped scenarios keep their static entry; measured ones upgrade
    assert any(table.source(k) == "static" for k in stats.preseeded_keys)
