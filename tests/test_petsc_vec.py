"""Tests for Layout and Vec."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import Layout, PETScError, Vec
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def test_layout_even_split():
    lay = Layout(4, 100)
    assert lay.local_sizes == [25, 25, 25, 25]
    assert lay.start(2) == 50 and lay.end(2) == 75


def test_layout_uneven_split():
    lay = Layout(3, 10)
    assert lay.local_sizes == [4, 3, 3]
    assert sum(lay.local_sizes) == 10


def test_layout_explicit_sizes():
    lay = Layout(3, 10, [5, 0, 5])
    assert lay.local_sizes == [5, 0, 5]
    with pytest.raises(PETScError):
        Layout(3, 10, [5, 5, 5])


def test_layout_owners_vectorised():
    lay = Layout(4, 100)
    owners = lay.owners(np.array([0, 24, 25, 99]))
    assert owners.tolist() == [0, 0, 1, 3]
    with pytest.raises(PETScError):
        lay.owners(np.array([100]))


def test_layout_to_local():
    lay = Layout(4, 100)
    assert lay.to_local(np.array([50, 74]), 2).tolist() == [0, 24]


def test_vec_local_sizes_and_range():
    cluster = make_cluster(4)

    def main(comm):
        v = Vec(comm, Layout(comm.size, 10))
        yield from v.set(1.0)
        return v.local_size, v.owned_range

    results = cluster.run(main)
    assert results[0] == (3, (0, 3))
    assert results[3] == (2, (8, 10))


def test_vec_dot_and_norm():
    cluster = make_cluster(4)
    n = 64

    def main(comm):
        lay = Layout(comm.size, n)
        x = Vec(comm, lay)
        y = Vec(comm, lay)
        start, end = x.owned_range
        x.local[:] = np.arange(start, end, dtype=np.float64)
        yield from y.set(2.0)
        d = yield from x.dot(y)
        nn = yield from y.norm()
        return d, nn

    results = cluster.run(main)
    expect_dot = 2.0 * (n - 1) * n / 2
    expect_norm = np.sqrt(4.0 * n)
    for d, nn in results:
        assert d == pytest.approx(expect_dot)
        assert nn == pytest.approx(expect_norm)


def test_vec_axpy_family():
    cluster = make_cluster(2)

    def main(comm):
        lay = Layout(comm.size, 8)
        x = Vec(comm, lay)
        y = Vec(comm, lay)
        w = Vec(comm, lay)
        yield from x.set(3.0)
        yield from y.set(1.0)
        yield from y.axpy(2.0, x)       # y = 1 + 2*3 = 7
        yield from y.aypx(0.5, x)       # y = 0.5*7 + 3 = 6.5
        yield from w.waxpy(-1.0, x, y)  # w = -3 + 6.5 = 3.5
        yield from w.scale(2.0)         # w = 7
        return float(w.local[0])

    assert cluster.run(main) == [7.0, 7.0]


def test_vec_sum_and_max():
    cluster = make_cluster(3)

    def main(comm):
        lay = Layout(comm.size, 9)
        v = Vec(comm, lay)
        start, end = v.owned_range
        v.local[:] = np.arange(start, end, dtype=np.float64)
        s = yield from v.sum()
        m = yield from v.max()
        return s, m

    for s, m in Cluster(3, config=MPIConfig.optimized(), cost=QUIET,
                        heterogeneous=False).run(main):
        assert s == 36.0
        assert m == 8.0


def test_vec_incompatible_layouts_rejected():
    cluster = make_cluster(2)

    def main(comm):
        x = Vec(comm, Layout(comm.size, 8))
        y = Vec(comm, Layout(comm.size, 10))
        yield from x.axpy(1.0, y)

    with pytest.raises(PETScError):
        cluster.run(main)


def test_vec_wrap_existing_array():
    cluster = make_cluster(2)

    def main(comm):
        lay = Layout(comm.size, 4)
        arr = np.full(2, float(comm.rank))
        v = Vec(comm, lay, array=arr)
        s = yield from v.sum()
        return s

    assert Cluster(2, config=MPIConfig.optimized(), cost=QUIET,
                   heterogeneous=False).run(main) == [2.0, 2.0]


def test_vec_wrong_array_shape_rejected():
    cluster = make_cluster(2)

    def main(comm):
        Vec(comm, Layout(comm.size, 4), array=np.zeros(7))
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)
