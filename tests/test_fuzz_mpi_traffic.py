"""Property-based fuzzing of the point-to-point layer: random message
soups (sizes spanning the eager/rendezvous boundary, duplicate tags,
self-sends) must all deliver the right bytes to the right buffers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import Cluster, MPIConfig
from repro.mpi.request import Request
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def payload(src, dst, tag, seq, size):
    base = float(src * 1_000_000 + dst * 10_000 + tag * 100 + seq)
    return base + np.arange(size, dtype=np.float64)


@st.composite
def traffic(draw):
    nranks = draw(st.integers(2, 5))
    nmsgs = draw(st.integers(1, 12))
    msgs = []
    for k in range(nmsgs):
        src = draw(st.integers(0, nranks - 1))
        dst = draw(st.integers(0, nranks - 1))
        tag = draw(st.integers(0, 3))
        size = draw(st.sampled_from([1, 7, 100, 2000]))  # eager + rendezvous
        msgs.append((src, dst, tag, k, size))
    return nranks, msgs


@given(traffic(), st.sampled_from([MPIConfig.baseline(), MPIConfig.optimized()]))
@settings(max_examples=60, deadline=None)
def test_random_message_soup_delivers_exactly(case, config):
    nranks, msgs = case
    cluster = Cluster(nranks, config=config, cost=QUIET, heterogeneous=False)

    def main(comm):
        rank = comm.rank
        # post receives for everything destined here, in global order per
        # (src, tag) stream -- matching must respect FIFO within a stream
        recvs = []
        for src, dst, tag, k, size in msgs:
            if dst == rank:
                buf = np.zeros(size)
                recvs.append((src, tag, k, size, buf, comm.irecv(buf, src, tag)))
        sends = []
        for src, dst, tag, k, size in msgs:
            if src == rank:
                sends.append(
                    (yield from comm.isend(payload(src, dst, tag, k, size),
                                           dst, tag))
                )
        yield from Request.waitall([r[-1] for r in recvs] + sends)
        return [(src, tag, k, size, buf) for src, tag, k, size, buf, _ in recvs]

    results = cluster.run(main)
    # group expectations per (src, dst, tag) stream: FIFO within a stream
    for dst, received in enumerate(results):
        streams = {}
        for src, _d, tag, k, size in [m for m in msgs if m[1] == dst]:
            streams.setdefault((src, tag), []).append((k, size))
        got_streams = {}
        for src, tag, k, size, buf in received:
            got_streams.setdefault((src, tag), []).append(buf)
        for (src, tag), expect_list in streams.items():
            bufs = got_streams[(src, tag)]
            assert len(bufs) == len(expect_list)
            for (k, size), buf in zip(expect_list, bufs):
                assert np.array_equal(buf, payload(src, dst, tag, k, size)), (
                    src, dst, tag, k,
                )


@given(st.integers(2, 6), st.integers(1, 30), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_ring_relay_any_source(nranks, rounds, seed):
    """A token relayed around the ring with ANY_SOURCE receives arrives
    intact after every round."""
    cluster = Cluster(nranks, config=MPIConfig.optimized(), cost=QUIET,
                      heterogeneous=False)
    rng = np.random.default_rng(seed)
    token = rng.random(8)

    def main(comm):
        from repro.mpi import ANY_SOURCE

        buf = token.copy() if comm.rank == 0 else np.zeros(8)
        for r in range(rounds):
            if comm.rank == 0:
                yield from comm.send(buf, dest=1 % comm.size, tag=r)
                if comm.size > 1:
                    yield from comm.recv(buf, source=ANY_SOURCE, tag=r)
            else:
                yield from comm.recv(buf, source=ANY_SOURCE, tag=r)
                yield from comm.send(buf, dest=(comm.rank + 1) % comm.size, tag=r)
        return buf

    results = cluster.run(main)
    assert np.array_equal(results[0], token)
