"""Project lint (repro.analyze.lint) and the ``python -m repro.analyze``
entry point."""

import textwrap
from pathlib import Path

import pytest

from repro.analyze import lint_paths, lint_source
from repro.analyze.__main__ import main as analyze_main

REPO = Path(__file__).resolve().parent.parent


def rules_of(source):
    report = lint_source(textwrap.dedent(source))
    return sorted(f.rule for f in report)


# -- individual rules ---------------------------------------------------------

def test_lnt001_bare_except():
    assert rules_of("""
        try:
            pass
        except:
            pass
    """) == ["LNT001"]
    assert rules_of("""
        try:
            pass
        except ValueError:
            pass
    """) == []


def test_lnt002_rescan_in_loop():
    assert rules_of("""
        def f(dt, items):
            for x in items:
                blocks = dt.flatten()
    """) == ["LNT002"]
    # rebinding the receiver inside the loop is fine: not loop-invariant
    assert rules_of("""
        def f(make, items):
            for x in items:
                dt = make(x)
                blocks = dt.flatten()
    """) == []
    # hoisted out of the loop is fine
    assert rules_of("""
        def f(dt, items):
            blocks = dt.flatten()
            for x in items:
                use(blocks)
    """) == []


def test_lnt003_dropped_generator():
    assert rules_of("""
        def main(comm):
            comm.send(x, 1)
    """) == ["LNT003"]
    assert rules_of("""
        def main(comm):
            yield from comm.send(x, 1)
    """) == []
    # assigning the generator is not flagged (it may be driven later)
    assert rules_of("""
        def main(comm):
            g = comm.send(x, 1)
            yield from g
    """) == []
    # barrier/wait are blocking generators too
    assert rules_of("""
        def main(comm, req):
            comm.barrier()
            req.wait()
    """) == ["LNT003", "LNT003"]


def test_lnt003_fires_inside_async_functions():
    # regression: visit_AsyncFunctionDef used to skip the dropped-
    # generator check entirely
    assert rules_of("""
        async def main(comm):
            comm.barrier()
    """) == ["LNT003"]
    assert rules_of("""
        async def main(comm):
            yield from comm.barrier()
    """) == []


def test_lnt002_attribute_receiver():
    # loop-invariant receiver reached through an attribute chain
    assert rules_of("""
        def f(self, items):
            for x in items:
                blocks = self.dtype.flatten()
    """) == ["LNT002"]
    # rebinding the attribute root inside the loop: not loop-invariant
    assert rules_of("""
        def f(make, items):
            for x in items:
                self = make(x)
                blocks = self.dtype.flatten()
    """) == []
    # rebinding the attribute itself inside the loop is also fine
    assert rules_of("""
        def f(self, make, items):
            for x in items:
                self.dtype = make(x)
                blocks = self.dtype.flatten()
    """) == []


def test_lnt004_mutable_default():
    assert rules_of("""
        def f(x, acc=[]):
            pass
    """) == ["LNT004"]
    assert rules_of("""
        def f(x, *, acc={}):
            pass
    """) == ["LNT004"]
    assert rules_of("""
        def f(x, acc=None):
            pass
    """) == []


def test_lnt004_lambda_defaults():
    # regression: lambda default arguments were never checked
    assert rules_of("""
        f = lambda x, acc=[]: acc
    """) == ["LNT004"]
    # ... including lambdas nested inside other expressions
    assert rules_of("""
        def g(items):
            return sorted(items, key=lambda x, seen={}: seen.get(x, 0))
    """) == ["LNT004"]
    assert rules_of("""
        f = lambda x, acc=None: acc
    """) == []


def test_lnt005_time_sleep():
    assert rules_of("""
        import time
        def f():
            time.sleep(1)
    """) == ["LNT005"]


def test_lnt006_concrete_algorithm_import():
    source = """
        from repro.mpi.collectives.allgatherv import _ring
    """
    assert rules_of(source) == ["LNT006"]
    # the public entry functions stay importable
    assert rules_of("""
        from repro.mpi.collectives.allgatherv import allgatherv
    """) == []
    # infra helpers that are not algorithms stay importable
    assert rules_of("""
        from repro.mpi.collectives.basic import _tag_window
    """) == []


def test_lnt006_exempts_the_algorithm_subsystem():
    source = textwrap.dedent("""
        from repro.mpi.collectives.alltoallw import _binned
    """)
    report = lint_source(source, path="src/repro/mpi/algorithms/policies.py")
    assert sorted(f.rule for f in report) == []
    report = lint_source(source, path="src/repro/petsc/scatter.py")
    assert sorted(f.rule for f in report) == ["LNT006"]


def test_lint_syntax_error_propagates():
    with pytest.raises(SyntaxError):
        lint_source("def broken(:\n")


# -- the repo lints clean -----------------------------------------------------

def test_src_tree_lints_clean():
    report = lint_paths([REPO / "src"])
    assert report.ok, report.render()


def test_all_examples_lint_clean():
    examples = sorted((REPO / "examples").glob("*.py"))
    assert examples, "examples/ directory is missing"
    report = lint_paths(examples)
    assert report.ok, report.render()


def test_tests_tree_lints_clean():
    report = lint_paths([REPO / "tests"])
    assert report.ok, report.render()


# -- CLI ----------------------------------------------------------------------

def test_cli_lint_clean_file_exits_zero(tmp_path, capsys):
    f = tmp_path / "clean.py"
    f.write_text("def f(comm):\n    yield from comm.barrier()\n")
    assert analyze_main([str(f)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_lint_broken_file_exits_one(tmp_path, capsys):
    f = tmp_path / "broken.py"
    f.write_text(
        "def f(comm):\n"
        "    try:\n"
        "        comm.barrier()\n"
        "    except:\n"
        "        pass\n"
    )
    assert analyze_main(["--lint", str(f)]) == 1
    out = capsys.readouterr().out
    assert "LNT001" in out and "LNT003" in out


def test_cli_missing_path_exits_two(tmp_path):
    assert analyze_main([str(tmp_path / "nope.txt")]) == 2


def test_cli_run_mode_reports_runtime_findings(tmp_path, capsys):
    script = tmp_path / "deadlock.py"
    script.write_text(textwrap.dedent("""
        import numpy as np
        from repro.mpi import Cluster, MPIConfig
        from repro.util import CostModel

        def main(comm):
            buf = np.zeros(4, dtype=np.float64)
            other = 1 - comm.rank
            yield from comm.recv(buf, other)
            yield from comm.send(buf, other)

        cluster = Cluster(2, config=MPIConfig.optimized(),
                          cost=CostModel(cpu_noise=0.0), heterogeneous=False)
        try:
            cluster.run(main)
        except Exception:
            pass
    """))
    assert analyze_main(["--run", str(script)]) == 1
    out = capsys.readouterr().out
    assert "DLK001" in out


def test_cli_run_mode_clean_script(tmp_path, capsys):
    script = tmp_path / "clean_run.py"
    script.write_text(textwrap.dedent("""
        import numpy as np
        from repro.mpi import Cluster, MPIConfig
        from repro.util import CostModel

        def main(comm):
            other = 1 - comm.rank
            out = np.full(8, float(comm.rank))
            buf = np.zeros(8)
            yield from comm.sendrecv(out, other, buf, other)
            yield from comm.barrier()

        cluster = Cluster(2, config=MPIConfig.optimized(),
                          cost=CostModel(cpu_noise=0.0), heterogeneous=False)
        cluster.run(main)
    """))
    assert analyze_main(["--run", str(script)]) == 0
