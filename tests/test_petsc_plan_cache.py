"""Tests for cached assembly plans (``VEC_SUBSET_OFF_PROC_ENTRIES``),
``set_values`` hardening, and one-sided ``VecScatter`` construction."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import Layout, PETScError, PlanMismatchError, Vec, VecScatter
from repro.prof import Profiler
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)

N = 4
G = 4 * N  # global vector size


def run(body, n=N, return_exceptions=False):
    cluster = Cluster(n, config=MPIConfig.optimized(), cost=QUIET,
                      heterogeneous=False)
    prof = Profiler.attach(cluster)
    results = cluster.run(body, return_exceptions=return_exceptions)
    return cluster, prof, results


def halo_targets(rank, size):
    """Each rank contributes to two successors' blocks."""
    chunk = G // size
    return np.asarray([((rank + 1) % size) * chunk,
                       ((rank + 2) % size) * chunk + 1], dtype=np.int64)


def assemble_rounds(rounds, subset=True, guard=True, mode="add",
                    grow_rank=None, grow_from=10**9):
    def main(comm):
        v = Vec(comm, Layout(comm.size, G))
        if subset:
            v.set_option("subset_off_proc_entries", guard=guard)
        for rnd in range(rounds):
            idx = halo_targets(comm.rank, comm.size)
            if comm.rank == grow_rank and rnd >= grow_from:
                extra = ((comm.rank + 3) % comm.size) * (G // comm.size) + 2
                idx = np.append(idx, extra)
            v.set_values(idx, np.full(idx.size, float(comm.rank + rnd + 1)),
                         mode=mode)
            yield from v.assemble()
        return v.local.copy()
    return main


def test_cache_hits_misses_and_byte_identity():
    _, prof, cached = run(assemble_rounds(3))
    assert prof.metrics.counter("repro_plan_cache_misses_total").total == N
    assert prof.metrics.counter("repro_plan_cache_hits_total").total == 2 * N
    assert prof.metrics.counter(
        "repro_plan_cache_invalidations_total").total == 0
    _, _, plain = run(assemble_rounds(3, subset=False))
    for a, b in zip(cached, plain):
        np.testing.assert_array_equal(a, b)


def test_cached_assembly_sends_fewer_messages():
    cached_cluster, _, _ = run(assemble_rounds(6))
    plain_cluster, _, _ = run(assemble_rounds(6, subset=False))
    assert (cached_cluster.net.messages_on_wire
            < plain_cluster.net.messages_on_wire)


def test_subset_reuse_under_add_mode():
    """Omitting a peer in a later round is a legal subset under add."""
    def main(comm):
        v = Vec(comm, Layout(comm.size, G))
        v.set_option("subset_off_proc_entries")
        idx = halo_targets(comm.rank, comm.size)
        v.set_values(idx, np.full(idx.size, 1.0), mode="add")
        yield from v.assemble()
        v.set_values(idx[:1], np.asarray([2.0]), mode="add")  # strict subset
        yield from v.assemble()
        return v.local.copy()

    _, prof, results = run(main)
    assert prof.metrics.counter("repro_plan_cache_hits_total").total == N

    def plain(comm):
        v = Vec(comm, Layout(comm.size, G))
        idx = halo_targets(comm.rank, comm.size)
        v.set_values(idx, np.full(idx.size, 1.0), mode="add")
        yield from v.assemble()
        v.set_values(idx[:1], np.asarray([2.0]), mode="add")
        yield from v.assemble()
        return v.local.copy()

    _, _, want = run(plain)
    for a, b in zip(results, want):
        np.testing.assert_array_equal(a, b)


def test_insert_mode_requires_exact_pattern():
    """A strict subset under insert breaks the promise -- uniformly."""
    def main(comm):
        v = Vec(comm, Layout(comm.size, G))
        v.set_option("subset_off_proc_entries")
        idx = halo_targets(comm.rank, comm.size)
        v.set_values(idx, np.full(idx.size, 1.0), mode="insert")
        yield from v.assemble()
        v.set_values(idx[:1], np.asarray([2.0]), mode="insert")
        yield from v.assemble()

    _, _, outcomes = run(main, return_exceptions=True)
    for out in outcomes:
        assert isinstance(out, PlanMismatchError)


def test_uniform_pattern_growth_rediscovers():
    """When *every* rank outgrows its plan the same way, eager
    invalidation empties all caches and assembly falls back to uniform
    rediscovery -- no error, fresh plan, correct values."""
    def main(comm):
        v = Vec(comm, Layout(comm.size, G))
        v.set_option("subset_off_proc_entries")
        idx = halo_targets(comm.rank, comm.size)
        v.set_values(idx, np.full(idx.size, 1.0), mode="add")
        yield from v.assemble()
        grown = np.append(idx, ((comm.rank + 3) % comm.size)
                          * (G // comm.size) + 2)
        v.set_values(grown, np.full(grown.size, 1.0), mode="add")
        yield from v.assemble()  # rediscovers, records the grown plan
        v.set_values(grown, np.full(grown.size, 1.0), mode="add")
        yield from v.assemble()  # cached again
        return v.local.copy()

    _, prof, _ = run(main)
    inval = prof.metrics.counter("repro_plan_cache_invalidations_total")
    assert inval.value(labels={"reason": "pattern"}) == N
    assert prof.metrics.counter("repro_plan_cache_misses_total").total == 2 * N
    assert prof.metrics.counter("repro_plan_cache_hits_total").total == N


def test_mode_change_invalidates():
    def main(comm):
        v = Vec(comm, Layout(comm.size, G))
        v.set_option("subset_off_proc_entries")
        idx = halo_targets(comm.rank, comm.size)
        v.set_values(idx, np.full(idx.size, 1.0), mode="add")
        yield from v.assemble()
        v.set_values(idx, np.full(idx.size, 2.0), mode="insert")
        yield from v.assemble()
        return True

    _, prof, _ = run(main)
    inval = prof.metrics.counter("repro_plan_cache_invalidations_total")
    assert inval.value(labels={"reason": "mode"}) == N


def test_single_rank_divergence_raises_uniformly():
    _, prof, outcomes = run(
        assemble_rounds(3, grow_rank=1, grow_from=1),
        return_exceptions=True)
    for rank, out in enumerate(outcomes):
        assert isinstance(out, PlanMismatchError), (rank, out)
    inval = prof.metrics.counter("repro_plan_cache_invalidations_total")
    assert inval.value(labels={"reason": "pattern"}) == 1   # the grower
    assert inval.value(labels={"reason": "disagree"}) == N - 1


def test_communicator_change_invalidates():
    def main(comm):
        v = Vec(comm, Layout(comm.size, G))
        v.set_option("subset_off_proc_entries")
        idx = halo_targets(comm.rank, comm.size)
        v.set_values(idx, np.full(idx.size, 1.0), mode="add")
        yield from v.assemble()
        v.comm = comm.dup()  # a migrated vector must not replay the plan
        v.set_values(idx, np.full(idx.size, 1.0), mode="add")
        yield from v.assemble()
        return v.local.copy()

    _, prof, _ = run(main)
    inval = prof.metrics.counter("repro_plan_cache_invalidations_total")
    assert inval.value(labels={"reason": "communicator"}) == N


def test_clearing_the_option_drops_the_plan():
    def main(comm):
        v = Vec(comm, Layout(comm.size, G))
        v.set_option("subset_off_proc_entries")
        idx = halo_targets(comm.rank, comm.size)
        v.set_values(idx, np.full(idx.size, 1.0), mode="add")
        yield from v.assemble()
        had = v._plan is not None
        v.set_option("subset_off_proc_entries", value=False)
        return had, v._plan is None

    _, _, results = run(main)
    assert all(had and cleared for had, cleared in results)


def test_set_option_unknown_name_raises():
    def main(comm):
        v = Vec(comm, Layout(comm.size, G))
        v.set_option("never_heard_of_it")
        yield from v.assemble()

    with pytest.raises(PETScError, match="unknown vector option"):
        run(main)


@pytest.mark.parametrize("indices,values,mode,match", [
    ([1], [1.0], "multiply", "unknown assembly mode"),
    ([1, 2], [1.0], "insert", "2 indices but 1 values"),
    ([G + 5], [1.0], "insert", "out of range"),
    ([-1], [1.0], "insert", "out of range"),
    ([1], [float("nan")], "insert", "NaN value"),
])
def test_set_values_hardening(indices, values, mode, match):
    def main(comm):
        v = Vec(comm, Layout(comm.size, G))
        v.set_values(np.asarray(indices), np.asarray(values), mode=mode)
        yield from v.assemble()

    with pytest.raises(PETScError, match=match):
        run(main, n=2)


def test_set_values_mixed_modes_rejected_locally():
    def main(comm):
        v = Vec(comm, Layout(comm.size, G))
        v.set_values(np.asarray([1]), np.asarray([1.0]), mode="insert")
        v.set_values(np.asarray([2]), np.asarray([2.0]), mode="add")
        yield from v.assemble()

    with pytest.raises(PETScError, match="mixed assembly modes"):
        run(main, n=2)


def test_from_needed_indices_matches_two_sided_construction():
    """One-sided construction (NBX-discovered send lists) moves the same
    bytes as a scatter built from replicated index sets."""
    per = G // N

    def main(comm):
        src_layout = Layout(comm.size, G)
        dst_layout = Layout(comm.size, G)
        # each rank reads its successor's block, reversed
        base = ((comm.rank + 1) % comm.size) * per
        src_global = np.arange(base, base + per, dtype=np.int64)[::-1]
        dst_local = np.arange(per, dtype=np.int64)
        sc = yield from VecScatter.from_needed_indices(
            comm, src_layout, dst_layout, src_global, dst_local)
        src = Vec(comm, src_layout,
                  np.arange(per, dtype=np.float64) + 100 * comm.rank)
        dst = Vec(comm, dst_layout)
        yield from sc.scatter(src, dst)
        return dst.local.copy()

    _, _, results = run(main)
    for rank, got in enumerate(results):
        succ = (rank + 1) % N
        want = (np.arange(per, dtype=np.float64) + 100 * succ)[::-1]
        np.testing.assert_array_equal(got[:per], want)


def test_from_needed_indices_invalid_args_raise_everywhere():
    """A bad argument on one rank raises on *every* rank (lockstep)."""
    def main(comm):
        layout = Layout(comm.size, G)
        if comm.rank == 1:
            src_global = np.asarray([G + 7], dtype=np.int64)  # out of range
        else:
            src_global = np.asarray([0], dtype=np.int64)
        dst_local = np.zeros(1, dtype=np.int64)
        yield from VecScatter.from_needed_indices(
            comm, layout, layout, src_global, dst_local)

    _, _, outcomes = run(main, return_exceptions=True)
    for out in outcomes:
        assert isinstance(out, PETScError)
        assert "from_needed_indices" in str(out)
