"""Tests for the causal critical-path analysis (``repro.prof.critical``)."""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.faults.plan import FaultPlan
from repro.mpi import Cluster, MPIConfig
from repro.prof import Profiler, critical_path
from repro.prof.critical import (
    SEGMENT_CATEGORIES,
    CriticalPath,
    Segment,
    report,
    write_report,
)
from repro.prof.spans import Tracer
from repro.util import CostModel

NRANKS = 8
SMALL, LARGE = 256, 16384
STRAGGLER = 3
COUNTS = [SMALL] * NRANKS
COUNTS[STRAGGLER] = LARGE
TOTAL = sum(COUNTS)


def _allgatherv_main(comm):
    send = np.full(COUNTS[comm.rank], float(comm.rank + 1))
    recv = np.zeros(TOTAL)
    yield from comm.allgatherv(send, recv, COUNTS)
    return recv


def run_profiled(fault_plan=None, config=None):
    cluster = Cluster(NRANKS, config=config or MPIConfig.optimized(),
                      cost=CostModel(cpu_noise=0.0), heterogeneous=False,
                      fault_plan=fault_plan)
    prof = Profiler.attach(cluster, label="critpath test")
    cluster.run(_allgatherv_main)
    return cluster, prof


@pytest.fixture(scope="module")
def clean_run():
    return run_profiled()


@pytest.fixture(scope="module")
def straggler_run():
    return run_profiled(FaultPlan().degrade(8.0, src=STRAGGLER))


# -- the identity the issue pins ---------------------------------------------

def test_segments_tile_the_makespan_exactly(clean_run):
    cluster, prof = clean_run
    crit = critical_path(prof)
    assert crit.makespan == pytest.approx(cluster.elapsed)
    assert crit.total() == pytest.approx(crit.makespan, rel=1e-9)
    # segments are contiguous and non-overlapping: each starts where the
    # previous ended, first at 0, last at the makespan
    assert crit.segments[0].t_start == pytest.approx(0.0, abs=1e-15)
    assert crit.segments[-1].t_end == pytest.approx(crit.makespan)
    for a, b in zip(crit.segments, crit.segments[1:]):
        assert b.t_start == pytest.approx(a.t_end, rel=1e-9)


def test_identity_survives_segment_cap(clean_run):
    _, prof = clean_run
    crit = critical_path(prof, max_segments=3)
    assert len(crit.segments) <= 4          # 3 walked + the capped prefix
    assert crit.total() == pytest.approx(crit.makespan, rel=1e-9)


def test_by_category_consistent_with_breakdown_vocabulary(clean_run):
    _, prof = clean_run
    crit = critical_path(prof)
    cats = crit.by_category()
    assert tuple(cats) == SEGMENT_CATEGORIES    # same vocabulary as export
    assert sum(cats.values()) == pytest.approx(crit.makespan, rel=1e-9)
    # the path's per-category time is bounded by the run's total activity
    # in that category (the path is one chain through the busy intervals)
    pack_total = sum(s.duration for s in prof.tracer.spans
                     if s.category == "cpu" and not s.open
                     and s.name in {"pack", "search", "lookahead", "unpack"})
    wire_total = sum(ev.t_end - ev.t_start for ev in prof.transfers)
    assert cats["pack"] <= pack_total + 1e-12
    assert cats["wire"] <= wire_total + 1e-12
    # and a communication-bound collective puts real wire time on the path
    assert cats["wire"] > 0


def test_by_rank_and_by_op_partition_the_path(clean_run):
    _, prof = clean_run
    crit = critical_path(prof)
    assert sum(r["total"] for r in crit.by_rank().values()) == \
        pytest.approx(crit.makespan, rel=1e-9)
    by_op = crit.by_op()
    assert sum(r["total"] for r in by_op.values()) == \
        pytest.approx(crit.makespan, rel=1e-9)
    assert any(op == "allgatherv" for op in by_op)


# -- straggler attribution ---------------------------------------------------

def test_straggler_rank_named(straggler_run):
    _, prof = straggler_run
    crit = critical_path(prof)
    strag = crit.stragglers()
    assert strag["detected"]
    assert STRAGGLER in strag["ranks"]
    # the slow-NIC rank carries the largest share of the path
    assert max(strag["times"]) == strag["times"][STRAGGLER]


def test_wire_segments_attributed_to_sender(straggler_run):
    _, prof = straggler_run
    crit = critical_path(prof)
    # rank 3's degraded NIC gates the run: wire time on the path lands on
    # the sender, not on the receivers that idled behind it
    wire_on_straggler = sum(
        s.duration for s in crit.segments
        if s.category == "wire" and s.rank == STRAGGLER)
    assert wire_on_straggler > 0.5 * crit.makespan


def test_clean_run_has_no_straggler(clean_run):
    # the volume outlier alone (no degraded NIC) spreads relay work around
    # the collective's communication pattern: concentration stays below the
    # Eq. 1 threshold and nobody is (wrongly) named
    _, prof = clean_run
    strag = critical_path(prof).stragglers()
    assert not strag["detected"]
    assert strag["ranks"] == []
    assert 1.0 <= strag["ratio"] < 4.0


# -- degenerate inputs -------------------------------------------------------

def test_empty_profiler():
    tracer = Tracer(SimpleNamespace(now=0.0))
    prof = SimpleNamespace(tracer=tracer, transfers=[], cluster=None,
                           label="empty")
    crit = critical_path(prof)
    assert crit.makespan == 0.0
    assert crit.segments == []
    assert crit.total() == 0.0
    strag = crit.stragglers()
    assert not strag["detected"]
    assert strag["ranks"] == []


def test_scripted_cross_rank_jump():
    """A hand-built two-rank run: rank 1 finishes last, blocked on a
    message from rank 0; the walk must jump the message edge."""
    clock = SimpleNamespace(now=0.0)
    tracer = Tracer(clock)
    with tracer.span("cpu", "compute", 0):       # rank 0 computes [0, 4]
        clock.now = 4.0
    xfer = SimpleNamespace(src=0, dst=1, t_start=4.0, t_end=7.0,
                           nbytes=64, tag=0, msg_id=42)
    clock.now = 7.0
    with tracer.span("cpu", "unpack", 1):        # rank 1 unpacks [7, 8]
        clock.now = 8.0
    prof = SimpleNamespace(tracer=tracer, transfers=[xfer], cluster=None,
                           label=None)
    crit = critical_path(prof)
    assert crit.makespan == pytest.approx(8.0)
    assert [s.category for s in crit.segments] == \
        ["compute", "wire", "pack"]              # unpack counts as pack
    assert [s.rank for s in crit.segments] == [0, 0, 1]   # wire -> sender
    assert crit.segments[1].msg_id == 42
    assert crit.total() == pytest.approx(8.0)


# -- the repro-critpath/1 document -------------------------------------------

def test_report_schema_and_roundtrip(straggler_run, tmp_path):
    _, prof = straggler_run
    doc = report(prof)
    assert doc["schema"] == "repro-critpath/1"
    run, = doc["runs"]
    assert run["label"] == "critpath test"
    assert run["nranks"] == NRANKS
    assert run["path_total"] == pytest.approx(run["makespan"], rel=1e-9)
    assert set(run["by_category"]) == set(SEGMENT_CATEGORIES)
    assert STRAGGLER in run["stragglers"]["ranks"]
    assert any("msg_id" in s for s in run["segments"])
    assert sum(s["duration"] for s in run["segments"]) == \
        pytest.approx(run["makespan"], rel=1e-9)

    path = tmp_path / "crit.json"
    written = write_report(str(path), prof)
    assert json.loads(path.read_text()) == json.loads(json.dumps(written))


def test_render_names_the_straggler(straggler_run):
    _, prof = straggler_run
    text = critical_path(prof).render()
    assert "critical path" in text
    assert "stragglers: rank(s)" in text
    assert str(STRAGGLER) in text


def test_segment_duration_property():
    s = Segment(0, 1.0, 3.5, "wire", "xfer 0->1", "allgatherv", msg_id=7)
    assert s.duration == pytest.approx(2.5)
    empty = CriticalPath(0.0, 0, [])
    assert empty.by_rank() == {}
    assert empty.by_op() == {}
