"""The datatype performance-guideline suite and its CI gate.

Timing-free where it matters: the gate logic is exercised with an
injectable fake timer and synthetic cases, so the pass/fail decision,
the violation messages and the byte-equality precheck are all pinned
deterministically.  One structural test shows *why* the pass-disabled
self-test in CI trips: deoptimized lowering emits orders of magnitude
more interpreted copy ops for the violation-prone cases.
"""

import numpy as np
import pytest

from repro.bench.guidelines import (
    DEFAULT_SLACK,
    DEFAULT_TOLERANCE,
    GuidelineCase,
    guideline_cases,
    run_guidelines,
)
from repro.datatypes import DOUBLE, Vector, ir
from repro.datatypes.packing import TypedBuffer


class FakeTimer:
    """Deterministic timer scripted with per-measurement *durations*.

    ``_best_of`` reads the clock twice per measurement (start/stop);
    this timer advances by the next scripted duration on the start read
    and stands still on the stop read, so measurement *i* observes
    exactly ``durations[i]`` seconds.
    """

    def __init__(self, durations):
        self.durations = list(durations)
        self.now = 0.0
        self.starting = True

    def __call__(self):
        t = self.now
        if self.starting and self.durations:
            self.now += self.durations.pop(0)
        self.starting = not self.starting
        return t


def _case(derived=None, reference=None):
    data = np.arange(8, dtype=np.uint8)
    return GuidelineCase("g", "c",
                         derived or (lambda: data),
                         reference or (lambda: data))


# -- gate logic (deterministic) -----------------------------------------------

def test_fast_derived_passes():
    # derived 1us per call, reference 10us: comfortably inside the gate
    timer = FakeTimer([1e-6] * 100)
    fig, violations = run_guidelines(
        cases=[_case()], repeats=1, timer=timer, slack=0.0)
    assert violations == []
    assert [row[-1] for row in fig.rows] == ["yes"]


def test_slow_derived_trips_the_gate():
    # derived then reference are timed in order: 100us vs 1us
    timer = FakeTimer([100e-6, 1e-6])
    fig, violations = run_guidelines(
        cases=[_case()], repeats=1, timer=timer, slack=0.0)
    assert len(violations) == 1
    assert "derived 100.0us" in violations[0]
    assert [row[-1] for row in fig.rows] == ["NO"]


def test_slack_absorbs_microsecond_noise():
    # 40us over a 1us reference: ratio is terrible but absolute cost
    # sits inside the 50us slack -- not a violation
    timer = FakeTimer([40e-6, 1e-6])
    _fig, violations = run_guidelines(
        cases=[_case()], repeats=1, timer=timer,
        tolerance=1.0, slack=DEFAULT_SLACK)
    assert violations == []


def test_best_of_repeats_takes_the_minimum():
    # derived: 50us, 2us, 50us -> best 2us; reference: 3us each
    timer = FakeTimer([50e-6, 2e-6, 50e-6, 3e-6, 3e-6, 3e-6])
    fig, violations = run_guidelines(
        cases=[_case()], repeats=3, timer=timer, slack=0.0)
    assert violations == []
    row = fig.rows[0]
    assert row[2] == pytest.approx(2.0)   # derived_us
    assert row[3] == pytest.approx(3.0)   # reference_us


def test_byte_mismatch_is_a_violation_without_timing():
    bad = _case(reference=lambda: np.zeros(8, dtype=np.uint8))
    fig, violations = run_guidelines(
        cases=[bad], repeats=1, timer=FakeTimer([1e-6] * 10))
    assert len(violations) == 1
    assert "DIFFERENT bytes" in violations[0]
    assert fig.rows == []  # never timed


def test_notes_record_pass_pipeline_state():
    fig, _ = run_guidelines(cases=[], repeats=1, timer=FakeTimer([]))
    assert any("IR passes ENABLED" in note for note in fig.notes)
    ir.set_passes_enabled(False)
    try:
        fig, _ = run_guidelines(cases=[], repeats=1, timer=FakeTimer([]))
        assert any("IR passes DISABLED" in note for note in fig.notes)
    finally:
        ir.set_passes_enabled(True)


# -- the catalogue ------------------------------------------------------------

def test_catalogue_covers_all_three_guidelines():
    cases = guideline_cases(scale=32)
    assert {c.guideline for c in cases} == {
        "pack-vs-manual", "vector-vs-indexed", "contig-vs-vector"}
    assert len(cases) == 5
    # every case moves identical bytes before any timing happens
    for case in cases:
        got = np.asarray(case.derived()).reshape(-1).view(np.uint8)
        want = np.asarray(case.reference()).reshape(-1).view(np.uint8)
        assert np.array_equal(got, want), case.case


def test_default_gate_parameters():
    assert DEFAULT_TOLERANCE == 1.5
    assert DEFAULT_SLACK == pytest.approx(50e-6)


# -- why --no-ir-passes must trip: structural, not timed ----------------------

def test_pass_disabled_compiler_explodes_op_count():
    n = 64
    matrix = np.zeros((n, n))
    optimized = TypedBuffer(matrix, Vector(n, 1, n, DOUBLE)).plan
    ir.set_passes_enabled(False)
    ir.cache_clear()
    try:
        deopt = TypedBuffer(matrix, Vector(n, 1, n, DOUBLE)).plan
    finally:
        ir.set_passes_enabled(True)
        ir.cache_clear()
    # one strided op vs one interpreted python op per element block:
    # the wall-clock gap the CI self-test relies on is structural
    assert optimized.program.num_ops == 1
    assert deopt.program.num_ops == n
    assert set(deopt.program.op_kinds()) == {"contig"}
