"""Tests for the single- vs dual-context pack engines (paper section 4.1)."""

import pytest

from repro.datatypes import (
    DOUBLE,
    Contiguous,
    DualContextEngine,
    SingleContextEngine,
    Vector,
    make_engine,
)
from repro.datatypes.engine import unpack_stage_cost
from repro.util import CostModel


def sparse_type(nblocks, block_bytes=24, gap=8):
    """A vector of `nblocks` short blocks -- classified sparse."""
    doubles = block_bytes // 8
    stride = doubles + gap // 8
    return Vector(nblocks, doubles, stride, DOUBLE)


COST = CostModel(cpu_noise=0.0)


def test_contiguous_type_has_no_processing_cost():
    dt = Contiguous(100_000, DOUBLE)
    blocks = dt.flatten()
    for cls in (SingleContextEngine, DualContextEngine):
        stages = cls(blocks, COST).plan()
        assert len(stages) == -(-dt.size // COST.pipeline_chunk)
        assert all(s.cpu_s == 0.0 for s in stages)
        assert all(s.dense for s in stages)


def test_sparse_classification():
    dt = sparse_type(1000)
    eng = DualContextEngine(dt.flatten(), COST)
    assert not eng.classify(0)


def test_dense_classification():
    # 4 KB contiguous runs are dense
    dt = Vector(100, 512, 1024, DOUBLE)
    eng = DualContextEngine(dt.flatten(), COST)
    assert eng.classify(0)


def test_single_context_search_grows_per_stage():
    dt = sparse_type(20_000)
    stages = SingleContextEngine(dt.flatten(), COST).plan()
    searches = [s.search_s for s in stages]
    assert len(searches) > 10
    assert searches[0] == 0.0  # first stage starts at block 0
    # strictly increasing: each stage re-walks everything already packed
    assert all(b > a for a, b in zip(searches, searches[1:]))


def test_dual_context_never_searches():
    dt = sparse_type(20_000)
    stages = DualContextEngine(dt.flatten(), COST).plan()
    assert all(s.search_s == 0.0 for s in stages)
    assert all(s.lookahead_s > 0.0 for s in stages)


def test_search_total_quadratic_vs_constant():
    """Doubling the datatype should ~4x the baseline search time but only
    ~2x the optimised engine's total look-ahead time."""
    small = sparse_type(10_000).flatten()
    large = sparse_type(20_000).flatten()
    s_small = sum(s.search_s for s in SingleContextEngine(small, COST).plan())
    s_large = sum(s.search_s for s in SingleContextEngine(large, COST).plan())
    assert s_large / s_small == pytest.approx(4.0, rel=0.1)
    d_small = sum(s.lookahead_s for s in DualContextEngine(small, COST).plan())
    d_large = sum(s.lookahead_s for s in DualContextEngine(large, COST).plan())
    assert d_large / d_small == pytest.approx(2.0, rel=0.1)


def test_pack_cost_identical_between_engines():
    dt = sparse_type(5000)
    s1 = SingleContextEngine(dt.flatten(), COST).plan()
    s2 = DualContextEngine(dt.flatten(), COST).plan()
    assert [s.pack_s for s in s1] == [s.pack_s for s in s2]
    assert [s.nbytes for s in s1] == [s.nbytes for s in s2]


def test_stages_cover_payload_exactly():
    dt = sparse_type(777)
    stages = DualContextEngine(dt.flatten(), COST).plan()
    assert stages[0].start == 0
    for a, b in zip(stages, stages[1:]):
        assert b.start == a.start + a.nbytes
    assert stages[-1].start + stages[-1].nbytes == dt.size


def test_dense_stages_have_no_copy_cost():
    dt = Vector(100, 4096, 8192, DOUBLE)  # 32 KB dense runs
    stages = SingleContextEngine(dt.flatten(), COST).plan()
    assert all(s.dense for s in stages)
    assert all(s.search_s == 0.0 for s in stages)
    # iovec setup only: far cheaper than copying the chunk
    for s in stages:
        assert s.pack_s < s.nbytes * COST.copy_byte / 10


def test_make_engine_factory():
    dt = sparse_type(10)
    assert isinstance(make_engine(dt.flatten(), COST, True), DualContextEngine)
    assert isinstance(make_engine(dt.flatten(), COST, False), SingleContextEngine)


def test_empty_plan_for_zero_size():
    # plan() guards size == 0 even though datatypes can't be empty;
    # exercise via a blocklist of one zero-size... not constructible, so
    # check the single-block path instead.
    dt = Contiguous(1, DOUBLE)
    stages = DualContextEngine(dt.flatten(), COST).plan()
    assert len(stages) == 1 and stages[0].nbytes == 8


def test_unpack_stage_cost():
    assert unpack_stage_cost(1000, 10, COST, contiguous=True) == 0.0
    expect = 1000 * COST.copy_byte + 10 * COST.block_overhead
    assert unpack_stage_cost(1000, 10, COST, contiguous=False) == pytest.approx(expect)


def test_lookahead_clipped_at_tail():
    dt = sparse_type(5)  # fewer blocks than lookahead_depth
    stages = DualContextEngine(dt.flatten(), COST).plan()
    assert stages[0].lookahead_s == pytest.approx(5 * COST.lookahead_block)
