"""Static datatype-signature analysis (repro.analyze.signatures)."""

import numpy as np
import pytest

from repro.analyze import (
    Report,
    check_datatype,
    check_transfer,
    full_signature,
    render_signature,
    signature_prefix,
)
from repro.datatypes import (
    DOUBLE,
    INT,
    Contiguous,
    Indexed,
    Struct,
    TypedBuffer,
    Vector,
)
from repro.datatypes.typemap import (
    _rle_repeat,
    primitive_for,
    sig_crc,
    signature_hash,
)


# -- typemap signatures -------------------------------------------------------

def test_primitive_signature():
    assert DOUBLE.typemap_signature() == (("DOUBLE", 1),)
    assert full_signature(DOUBLE, 5) == (("DOUBLE", 5),)


def test_vector_signature_merges_runs():
    # 4 blocks of 2 doubles: signature ignores displacements entirely
    v = Vector(4, 2, 8, DOUBLE)
    assert v.typemap_signature() == (("DOUBLE", 8),)


def test_struct_signature_preserves_field_order():
    s = Struct([3, 2], [0, 32], [DOUBLE, INT])
    assert s.typemap_signature() == (("DOUBLE", 3), ("INT", 2))
    # count=2 repeats the whole struct, so runs cannot merge at the seam
    assert full_signature(s, 2) == (
        ("DOUBLE", 3), ("INT", 2), ("DOUBLE", 3), ("INT", 2),
    )


def test_rle_repeat_boundary_merge():
    sig = (("A", 1), ("B", 2), ("A", 3))
    assert _rle_repeat(sig, 1) == sig
    assert _rle_repeat(sig, 3) == (
        ("A", 1), ("B", 2), ("A", 4), ("B", 2), ("A", 4), ("B", 2), ("A", 3),
    )
    # total element count is always preserved
    assert sum(c for _n, c in _rle_repeat(sig, 7)) == 6 * 7


def test_rle_repeat_caps_explosive_signatures():
    # a struct whose repetition cannot merge produces 2 runs per copy;
    # huge counts collapse to a "..." summary instead of a giant tuple
    sig = (("DOUBLE", 1), ("INT", 1))
    out = _rle_repeat(sig, 10 ** 6)
    assert out == (("...", 2 * 10 ** 6),)


def test_signature_hash_stable_and_canonical():
    v = Vector(4, 2, 8, DOUBLE)
    c = Contiguous(8, DOUBLE)
    # same signature => same hash, even for different constructors
    assert signature_hash(v, 1) == signature_hash(c, 1)
    assert signature_hash(v, 1) == sig_crc((("DOUBLE", 8),))
    assert signature_hash(v, 1) != signature_hash(Contiguous(8, INT), 1)


def test_primitive_for_returns_shared_instances():
    assert primitive_for(np.dtype(np.float64)) is DOUBLE
    assert primitive_for(np.dtype(np.int32)) is INT


def test_typed_buffer_signature():
    buf = np.zeros(16, dtype=np.float64)
    tb = TypedBuffer(buf, DOUBLE, count=16)
    assert tb.signature() == (("DOUBLE", 16),)
    assert tb.signature_hash() == sig_crc((("DOUBLE", 16),))
    empty = TypedBuffer(buf, DOUBLE, count=0)
    assert empty.signature() == ()
    assert empty.signature_hash() == 0


# -- prefix matching ----------------------------------------------------------

def test_prefix_equal_and_shorter():
    assert signature_prefix((("DOUBLE", 4),), (("DOUBLE", 4),))
    assert signature_prefix((("DOUBLE", 3),), (("DOUBLE", 4),))
    assert signature_prefix((), (("DOUBLE", 4),))


def test_prefix_rejects_longer_send():
    assert not signature_prefix((("DOUBLE", 5),), (("DOUBLE", 4),))


def test_prefix_rejects_type_mismatch():
    assert not signature_prefix((("DOUBLE", 4),), (("INT", 4),))
    assert not signature_prefix(
        (("DOUBLE", 2), ("INT", 1)), (("DOUBLE", 2), ("DOUBLE", 1)),
    )


def test_prefix_across_run_boundaries():
    # 8 doubles sent as one run match 8 doubles received as two runs
    assert signature_prefix((("DOUBLE", 8),), (("DOUBLE", 3), ("DOUBLE", 5)))
    assert signature_prefix((("DOUBLE", 3), ("DOUBLE", 5)), (("DOUBLE", 8),))


def test_prefix_summarised_compares_counts_only():
    assert signature_prefix((("...", 10),), (("DOUBLE", 12),))
    assert not signature_prefix((("...", 20),), (("DOUBLE", 12),))


def test_render_signature():
    assert render_signature((("DOUBLE", 8), ("INT", 2))) == "DOUBLE*8 INT*2"
    assert render_signature(()) == "(empty)"
    long = tuple((f"T{i}", 1) for i in range(10))
    assert render_signature(long).endswith("...")


# -- transfer compatibility (SIG001 / SIG002) ---------------------------------

def test_check_transfer_clean():
    report = check_transfer(Vector(4, 2, 8, DOUBLE), 1, DOUBLE, 8)
    assert report.ok and len(report) == 0


def test_check_transfer_type_mismatch_sig001():
    report = check_transfer(Vector(4, 1, 8, DOUBLE), 1, INT, 8)
    rules = [f.rule for f in report]
    assert "SIG001" in rules


def test_check_transfer_truncation_sig002():
    report = check_transfer(DOUBLE, 10, DOUBLE, 4)
    rules = [f.rule for f in report]
    assert "SIG002" in rules
    assert not report.ok and report.exit_code() == 1


# -- single-datatype checks (SIG003 / SIG004 / SIG005) ------------------------

def test_check_datatype_overlap_sig003():
    report = check_datatype(Indexed([4, 4], [0, 2], DOUBLE), "olap")
    assert [f.rule for f in report] == ["SIG003"]


def test_check_datatype_backwards_sig005():
    report = check_datatype(Indexed([2, 2], [8, 0], DOUBLE), "back")
    assert [f.rule for f in report] == ["SIG005"]


def test_check_datatype_density_sig004():
    # 64 single-double blocks: the paper's section-4.1 pathology shape
    report = check_datatype(Vector(64, 1, 8, DOUBLE), "sparse")
    assert [f.rule for f in report] == ["SIG004"]


def test_check_datatype_clean_on_dense():
    report = check_datatype(Contiguous(64, DOUBLE), "dense")
    assert len(report) == 0 and report.ok


def test_report_dedup_and_render():
    report = Report()
    assert report.add("SIG001", "msg", key="k") is not None
    assert report.add("SIG001", "other msg", key="k") is None  # deduped
    assert len(report) == 1
    with pytest.raises(ValueError):
        report.add("NOPE99", "unknown rule")
    text = report.render()
    assert "SIG001" in text and "error" in text
