"""Tests for the explicit MPI_Pack/Unpack API."""

import numpy as np
import pytest

from repro.datatypes import DOUBLE, INT, Contiguous, Vector
from repro.mpi import Cluster, MPIConfig, MPIError
from repro.mpi.pack import mpi_pack, mpi_unpack, pack_size
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n=1):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def test_pack_size():
    assert pack_size(10, DOUBLE) == 80
    assert pack_size(4, Contiguous(3, DOUBLE)) == 96
    with pytest.raises(MPIError):
        pack_size(-1, DOUBLE)


def test_pack_then_unpack_roundtrip():
    from repro.datatypes import TypedBuffer

    cluster = make_cluster()

    def main(comm):
        m = np.arange(16, dtype=np.float64).reshape(4, 4)
        col = Vector(4, 1, 4, DOUBLE)
        out = np.zeros(pack_size(1, col), dtype=np.uint8)
        pos = yield from mpi_pack(comm, TypedBuffer(m, col), None, None, out, 0)
        assert pos == 32
        dst = np.zeros((4, 4))
        pos2 = yield from mpi_unpack(comm, out, 0, TypedBuffer(dst, col))
        assert pos2 == 32
        return m[:, 0].copy(), dst[:, 0].copy()

    src_col, dst_col = cluster.run(main)[0]
    assert np.array_equal(src_col, dst_col)


def test_multiple_packs_thread_position():
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            header = np.array([7, 3], dtype=np.int32)
            payload = np.arange(5, dtype=np.float64)
            buf = np.zeros(pack_size(2, INT) + pack_size(5, DOUBLE), dtype=np.uint8)
            pos = yield from mpi_pack(comm, header, INT, 2, buf, 0)
            pos = yield from mpi_pack(comm, payload, DOUBLE, 5, buf, pos)
            yield from comm.send(buf[:pos], dest=1)
            return None
        buf = np.zeros(48, dtype=np.uint8)
        yield from comm.recv(buf, source=0)
        header = np.zeros(2, dtype=np.int32)
        payload = np.zeros(5)
        pos = yield from mpi_unpack(comm, buf, 0, header, INT, 2)
        pos = yield from mpi_unpack(comm, buf, pos, payload, DOUBLE, 5)
        return header.tolist(), payload.tolist()

    results = make_cluster(2).run(main)
    header, payload = results[1]
    assert header == [7, 3]
    assert payload == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_pack_overflow_rejected():
    cluster = make_cluster()

    def main(comm):
        buf = np.zeros(8, dtype=np.uint8)
        yield from mpi_pack(comm, np.zeros(4), DOUBLE, 4, buf, 0)

    with pytest.raises(MPIError):
        cluster.run(main)


def test_unpack_underflow_rejected():
    cluster = make_cluster()

    def main(comm):
        buf = np.zeros(8, dtype=np.uint8)
        out = np.zeros(4)
        yield from mpi_unpack(comm, buf, 0, out, DOUBLE, 4)

    with pytest.raises(MPIError):
        cluster.run(main)


def test_pack_charges_cpu_time():
    cluster = make_cluster()

    def main(comm):
        data = np.zeros(1000)
        buf = np.zeros(8000, dtype=np.uint8)
        yield from mpi_pack(comm, data, DOUBLE, 1000, buf, 0)
        return comm.engine.now

    elapsed = cluster.run(main)[0]
    assert elapsed >= 8000 * QUIET.copy_byte
