"""End-to-end transfers of Struct/Subarray datatypes through the comm stack
(the interlaced-field and ghost-face layouts of paper section 2.1)."""

import numpy as np

from repro.datatypes import DOUBLE, INT, Resized, Struct, Subarray, TypedBuffer
from repro.mpi import Cluster, MPIConfig
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def test_struct_field_extraction_over_the_wire():
    """Send only the 'pressure' field out of interlaced (p, T, vx, vy)
    records -- one noncontiguous Struct send, contiguous receive."""
    n = 50
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            records = np.arange(n * 4, dtype=np.float64).reshape(n, 4)
            # a 'pressure' element: one double at offset 0 of each
            # 32-byte record (extent set via Resized)
            pressure = Struct([1], [0], [DOUBLE])
            tiled = TypedBuffer(records, Resized(pressure, 32), count=n)
            yield from comm.send(tiled, dest=1)
            return records[:, 0].copy()
        buf = np.zeros(n)
        yield from comm.recv(buf, source=0)
        return buf

    sent, received = cluster.run(main)
    assert np.array_equal(sent, received)


def test_mixed_struct_roundtrip():
    """An (int32, double) header struct survives a send/recv roundtrip."""
    cluster = make_cluster(2)
    dt = Struct([2, 3], [0, 8], [INT, DOUBLE])

    def main(comm):
        if comm.rank == 0:
            raw = np.zeros(32, dtype=np.uint8)
            raw[:8].view(np.int32)[:] = [7, -9]
            raw[8:32].view(np.float64)[:] = [1.5, 2.5, 3.5]
            yield from comm.send(TypedBuffer(raw, dt), dest=1)
            return None
        out = np.zeros(32, dtype=np.uint8)
        yield from comm.recv(TypedBuffer(out, dt), source=0)
        return out[:8].view(np.int32).tolist(), out[8:32].view(np.float64).tolist()

    ints, doubles = cluster.run(main)[1]
    assert ints == [7, -9]
    assert doubles == [1.5, 2.5, 3.5]


def test_subarray_face_exchange_between_ranks():
    """Ship one face of a 3-D block into the matching face of another
    rank's block using Subarray datatypes on both sides."""
    shape = (6, 5, 4)
    cluster = make_cluster(2)

    def main(comm):
        block = np.zeros(shape)
        if comm.rank == 0:
            block[:] = np.arange(np.prod(shape)).reshape(shape)
            face = Subarray(shape, (6, 5, 1), (0, 0, 3), DOUBLE)  # x = 3 face
            yield from comm.send(TypedBuffer(block, face), dest=1)
            return block[:, :, 3].copy()
        face = Subarray(shape, (6, 5, 1), (0, 0, 0), DOUBLE)      # x = 0 face
        yield from comm.recv(TypedBuffer(block, face), source=0)
        return block[:, :, 0].copy()

    sent, received = cluster.run(main)
    assert np.array_equal(sent, received)


def test_struct_over_baseline_config_same_data():
    """Data integrity is configuration-independent."""
    dt = Struct([1, 1], [0, 8], [DOUBLE, DOUBLE])

    def run(config):
        cluster = Cluster(2, config=config, cost=QUIET, heterogeneous=False)

        def main(comm):
            if comm.rank == 0:
                raw = np.array([3.14, 2.71])
                yield from comm.send(TypedBuffer(raw, dt), dest=1)
                return None
            out = np.zeros(2)
            yield from comm.recv(TypedBuffer(out, dt), source=0)
            return out.tolist()

        return cluster.run(main)[1]

    assert run(MPIConfig.baseline()) == run(MPIConfig.optimized()) == [3.14, 2.71]
