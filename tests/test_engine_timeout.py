"""Engine.timeout cancellation paths and deadlock diagnosability.

Satellite coverage: the retransmit machinery leans on two properties of
timers -- (a) a timer whose operation completed first can be cancelled
without the original heap event double-resolving it, and (b) a fired
timer is inert to a later cancel.  Plus the diagnosable-deadlock payload
and the zero-elapsed utilization-report edge.
"""

import pytest

from repro.mpi import Cluster, MPIConfig
from repro.simtime.engine import (
    Engine,
    SimulationDeadlock,
    SimulationError,
)
from repro.util import CostModel


def test_timeout_fires_after_delay():
    eng = Engine()
    seen = []

    def proc():
        timer = eng.timeout(1.5)
        yield timer
        seen.append(eng.now)

    eng.spawn(proc(), "p")
    eng.run()
    assert seen == [1.5]


def test_timeout_cancelled_before_firing_resolves_immediately():
    eng = Engine()
    states = []

    def proc():
        timer = eng.timeout(100.0)
        assert timer.cancel() is True
        assert timer.cancelled and timer.done
        yield timer  # already resolved: resumes without waiting 100 s
        states.append(eng.now)

    eng.spawn(proc(), "p")
    eng.run()
    # the cancel resolved the wait at t=0; the stale heap entry at t=100
    # still pops but must be a no-op (the guarded timer checks done)
    assert states == [0.0]
    assert eng.now == 100.0  # heap entry drained, nothing resolved twice


def test_cancel_after_fire_is_a_noop():
    eng = Engine()

    def proc():
        timer = eng.timeout(1.0)
        yield timer
        assert timer.cancel() is False  # already fired
        assert not timer.cancelled

    eng.spawn(proc(), "p")
    eng.run()


def test_race_op_completes_before_timer():
    """The reliable-transport pattern: wait on (op, timer), cancel loser."""
    eng = Engine()
    order = []

    def proc():
        op = eng.future("op")
        eng.schedule(0.5, lambda: op.set_result("done"))
        timer = eng.timeout(10.0)
        winner = eng.future("winner")

        def on_first(fut):
            if not winner.done:
                winner.set_result(fut)

        op.add_done_callback(on_first)
        timer.add_done_callback(on_first)
        first = yield winner
        assert first is op
        order.append(eng.now)
        timer.cancel()

    eng.spawn(proc(), "p")
    eng.run()
    assert order == [0.5]
    assert eng.now == 10.0  # stale timer event drained without effect


def test_no_double_resolution_on_cancelled_timer():
    eng = Engine()

    def proc():
        timer = eng.timeout(1.0)
        timer.cancel()
        with pytest.raises(SimulationError):
            timer.set_result("again")
        yield timer

    eng.spawn(proc(), "p")
    eng.run()


def test_heap_drains_with_many_cancelled_timers():
    """Cancelled timers leave no live work behind -- the run terminates."""
    eng = Engine()

    def proc():
        for _ in range(100):
            timer = eng.timeout(5.0)
            timer.cancel()
            yield timer
        return "ok"

    p = eng.spawn(proc(), "p")
    eng.run()
    assert p.result == "ok"
    assert not eng.live_processes()


# -- deadlock diagnosability ------------------------------------------------


def test_deadlock_names_blocked_processes():
    eng = Engine()

    def waiter(name):
        fut = eng.future(f"never-{name}")
        yield fut

    eng.spawn(waiter("a"), "proc-a")
    eng.spawn(waiter("b"), "proc-b")
    with pytest.raises(SimulationDeadlock) as info:
        eng.run()
    exc = info.value
    assert len(exc.blocked) == 2
    names = {name for name, _ in exc.blocked}
    assert names == {"proc-a", "proc-b"}
    for _name, wait in exc.blocked:
        assert "never-" in wait
    assert "proc-a" in str(exc)


def test_deadlock_payload_through_mpi_layer():
    cluster = Cluster(2, config=MPIConfig.optimized())

    def main(comm):
        import numpy as np
        buf = np.zeros(1)
        yield from comm.recv(buf, source=1 - comm.rank)

    with pytest.raises(SimulationDeadlock) as info:
        cluster.run(main)
    blocked = info.value.blocked
    assert any(name == "rank0" for name, _ in blocked)
    assert any(name == "rank1" for name, _ in blocked)


# -- utilization report edge case -------------------------------------------


def test_utilization_report_zero_elapsed():
    """A run that never advances the clock reports 0.0 utilizations."""
    cluster = Cluster(2, config=MPIConfig.optimized(),
                      cost=CostModel(cpu_noise=0.0))

    def main(comm):
        return comm.rank
        yield  # pragma: no cover - makes this a generator

    cluster.run(main)
    assert cluster.elapsed == 0.0
    report = cluster.utilization_report()
    assert report["elapsed"] == 0.0
    assert report["max_send_link_utilization"] == 0.0
    assert report["max_recv_link_utilization"] == 0.0
