"""SolverCheckpoint: periodic replication, restore, crash-restart solve."""

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.mpi import Cluster, MPIConfig
from repro.petsc import CG, DMDA, Laplacian, Layout, SolverCheckpoint, Vec
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def test_interval_validation():
    with pytest.raises(ValueError):
        SolverCheckpoint(0)


def test_save_replicates_and_restore_round_trips():
    cluster = Cluster(3, config=MPIConfig.optimized(), cost=QUIET)

    def main(comm):
        lay = Layout(comm.size, 10)
        x = Vec(comm, lay)
        start, end = x.owned_range
        x.local[:] = np.arange(start, end, dtype=float)
        ckpt = SolverCheckpoint(every=2)
        assert ckpt.restore(x) is False  # nothing saved yet
        yield from ckpt.save(x, iteration=4)
        assert ckpt.saves == 1 and ckpt.iteration == 4
        assert np.array_equal(ckpt.data, np.arange(10, dtype=float))
        # clobber, then restore
        x.local[:] = -1.0
        assert ckpt.restore(x) is True
        assert np.array_equal(x.local, np.arange(start, end, dtype=float))
        return True

    assert cluster.run(main) == [True, True, True]


def test_restore_rejects_wrong_global_size():
    cluster = Cluster(2, config=MPIConfig.optimized(), cost=QUIET)

    def main(comm):
        ckpt = SolverCheckpoint(every=1)
        x = Vec(comm, Layout(comm.size, 8))
        yield from ckpt.save(x, iteration=1)
        y = Vec(comm, Layout(comm.size, 9))
        try:
            ckpt.restore(y)
        except ValueError:
            return "rejected"
        return "accepted"

    assert cluster.run(main) == ["rejected", "rejected"]


def test_maybe_save_respects_interval():
    cluster = Cluster(2, config=MPIConfig.optimized(), cost=QUIET)

    def main(comm):
        ckpt = SolverCheckpoint(every=3)
        x = Vec(comm, Layout(comm.size, 6))
        for it in range(1, 10):
            yield from ckpt.maybe_save(x, it)
        return ckpt.saves, ckpt.iteration

    results = cluster.run(main)
    assert results == [(3, 9), (3, 9)]  # saved at 3, 6, 9


def test_cg_with_checkpoint_matches_plain_cg():
    """Checkpointing must not perturb the iteration sequence."""
    n = 8

    def solve(with_ckpt):
        cluster = Cluster(4, config=MPIConfig.optimized(), cost=QUIET)

        def main(comm):
            da = DMDA(comm, (n, n))
            A = Laplacian(da)
            b = da.create_global_vec()
            b.local[:] = 1.0
            x = da.create_global_vec()
            ckpt = SolverCheckpoint(every=4) if with_ckpt else None
            res = yield from CG(A, b, x, rtol=1e-10, checkpoint=ckpt)
            return res.iterations, x.local.copy(), \
                (ckpt.saves if ckpt else 0)

        return cluster.run(main)

    plain = solve(False)
    ckptd = solve(True)
    for (it_p, x_p, _), (it_c, x_c, saves) in zip(plain, ckptd):
        assert it_p == it_c
        assert np.array_equal(x_p, x_c)
        assert saves >= 1


def test_fem_crash_restart_converges_to_same_answer():
    """Acceptance: a crash mid-solve + checkpointing converges like the
    fault-free run (the paper-level invariant for graceful degradation)."""
    from repro.apps.fem_poisson import solve_poisson_fem

    clean = solve_poisson_fem(5, n=10, rtol=1e-10)
    plan = FaultPlan(seed=2).crash(2, at_time=clean.simulated_time * 0.6)
    recovered = solve_poisson_fem(5, n=10, rtol=1e-10, fault_plan=plan,
                                  checkpoint_every=5)
    assert recovered.converged
    assert abs(recovered.error_max - clean.error_max) < 1e-8
