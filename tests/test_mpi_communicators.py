"""Tests for communicator dup/split (groups and matching contexts)."""

import numpy as np

from repro.mpi import Cluster, MPIConfig
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def test_dup_preserves_group():
    cluster = make_cluster(4)

    def main(comm):
        dup = comm.dup()
        yield from comm.barrier()
        return dup.rank, dup.size, dup.ctx != comm.ctx

    results = cluster.run(main)
    assert [r[:2] for r in results] == [(r, 4) for r in range(4)]
    assert all(r[2] for r in results)


def test_dup_isolates_messages():
    """A send on the dup must not match a recv on the parent."""
    cluster = make_cluster(2)

    def main(comm):
        dup = comm.dup()
        if comm.rank == 0:
            # same tag, different communicators
            r1 = yield from comm.isend(np.array([1.0]), dest=1, tag=5)
            r2 = yield from dup.isend(np.array([2.0]), dest=1, tag=5)
            yield from r1.wait()
            yield from r2.wait()
            return None
        buf_dup = np.zeros(1)
        yield from dup.recv(buf_dup, source=0, tag=5)
        buf_parent = np.zeros(1)
        yield from comm.recv(buf_parent, source=0, tag=5)
        return buf_parent[0], buf_dup[0]

    results = cluster.run(main)
    assert results[1] == (1.0, 2.0)


def test_split_even_odd():
    cluster = make_cluster(6)

    def main(comm):
        sub = yield from comm.split(color=comm.rank % 2)
        # ranks 0,2,4 -> color 0 sub-ranks 0,1,2; ranks 1,3,5 -> color 1
        total = yield from sub.allreduce(comm.rank)
        return sub.rank, sub.size, total

    results = cluster.run(main)
    assert results[0] == (0, 3, 0 + 2 + 4)
    assert results[1] == (0, 3, 1 + 3 + 5)
    assert results[4] == (2, 3, 6)
    assert results[5] == (2, 3, 9)


def test_split_with_key_reorders():
    cluster = make_cluster(4)

    def main(comm):
        # reverse the rank order within the new communicator
        sub = yield from comm.split(color=0, key=-comm.rank)
        yield from comm.barrier()
        return sub.rank

    assert cluster.run(main) == [3, 2, 1, 0]


def test_split_undefined_color():
    cluster = make_cluster(4)

    def main(comm):
        sub = yield from comm.split(color=0 if comm.rank < 2 else None)
        if sub is None:
            return None
        s = yield from sub.allreduce(1)
        return s

    results = cluster.run(main)
    assert results[:2] == [2, 2]
    assert results[2:] == [None, None]


def test_subcommunicator_p2p_uses_local_ranks():
    cluster = make_cluster(4)

    def main(comm):
        # upper half: global ranks 2,3 become sub ranks 0,1
        color = comm.rank // 2
        sub = yield from comm.split(color)
        if sub.rank == 0:
            yield from sub.send(np.array([float(comm.rank)]), dest=1)
            return None
        buf = np.zeros(1)
        status = yield from sub.recv(buf, source=0)
        return buf[0], status.source

    results = cluster.run(main)
    assert results[1] == (0.0, 0)   # received from global 0 = sub rank 0
    assert results[3] == (2.0, 0)   # received from global 2 = sub rank 0


def test_collectives_on_subcommunicator():
    cluster = make_cluster(8)

    def main(comm):
        sub = yield from comm.split(comm.rank % 2)
        v = yield from sub.bcast(comm.rank if sub.rank == 0 else None, root=0)
        arr = np.full(3, float(comm.rank))
        out = yield from sub.allreduce_array(arr)
        return v, out[0]

    results = cluster.run(main)
    # evens' root is global 0; odds' root is global 1
    assert [r[0] for r in results] == [0, 1, 0, 1, 0, 1, 0, 1]
    assert results[0][1] == 0 + 2 + 4 + 6
    assert results[1][1] == 1 + 3 + 5 + 7


def test_nested_split():
    cluster = make_cluster(8)

    def main(comm):
        half = yield from comm.split(comm.rank // 4)       # two halves
        quarter = yield from half.split(half.rank // 2)    # four quarters
        s = yield from quarter.allreduce(comm.rank)
        return s

    results = cluster.run(main)
    assert results == [1, 1, 5, 5, 9, 9, 13, 13]


def test_split_heavy_use_with_petsc_vec():
    """Sub-communicators drive independent PETSc vectors."""
    from repro.petsc import Layout, Vec

    cluster = make_cluster(4)

    def main(comm):
        sub = yield from comm.split(comm.rank % 2)
        lay = Layout(sub.size, 10)
        v = Vec(sub, lay)
        yield from v.set(float(comm.rank % 2 + 1))
        s = yield from v.sum()
        return s

    results = cluster.run(main)
    assert results == [10.0, 20.0, 10.0, 20.0]
