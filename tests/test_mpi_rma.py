"""Tests for one-sided communication (windows, put/get/accumulate)."""

import numpy as np
import pytest

from repro.datatypes import DOUBLE, Vector
from repro.mpi import Cluster, MPIConfig, MPIError
from repro.mpi.rma import Win
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def test_put_contiguous():
    cluster = make_cluster(2)

    def main(comm):
        local = np.zeros(10)
        win = yield from Win.create(comm, local)
        if comm.rank == 0:
            data = np.arange(10, dtype=np.float64)
            yield from win.put(data, target_rank=1)
        yield from win.fence()
        return local.copy()

    results = cluster.run(main)
    assert np.array_equal(results[1], np.arange(10, dtype=np.float64))
    assert np.all(results[0] == 0.0)


def test_put_with_offset_and_count():
    cluster = make_cluster(2)

    def main(comm):
        local = np.zeros(10)
        win = yield from Win.create(comm, local)
        if comm.rank == 0:
            yield from win.put(np.full(3, 7.0), 1, DOUBLE, 3,
                               target_offset_bytes=4 * 8)
        yield from win.fence()
        return local.copy()

    got = cluster.run(main)[1]
    assert got.tolist() == [0, 0, 0, 0, 7, 7, 7, 0, 0, 0]


@pytest.mark.parametrize("method", ["pack", "multi_rdma"])
def test_put_noncontiguous_target(method):
    """Put into a strided target layout (a matrix column)."""
    n = 8
    cluster = make_cluster(2)

    def main(comm):
        local = np.zeros((n, n))
        win = yield from Win.create(comm, local)
        if comm.rank == 0:
            col = Vector(n, 1, n, DOUBLE)
            yield from win.put(
                np.arange(n, dtype=np.float64), 1, col, 1,
                target_offset_bytes=2 * 8, method=method,
            )
        yield from win.fence()
        return local.copy()

    got = cluster.run(main)[1]
    assert np.array_equal(got[:, 2], np.arange(n, dtype=np.float64))
    assert got[:, :2].sum() == 0 and got[:, 3:].sum() == 0


def test_multi_rdma_faster_for_dense_slower_for_sparse():
    """The related-work trade-off: zero-copy wins with few large blocks,
    host-assisted packing wins with many tiny blocks."""

    def run(nblocks, blocklen, method):
        cluster = make_cluster(2)

        def main(comm):
            local = np.zeros(nblocks * blocklen * 2)
            win = yield from Win.create(comm, local)
            if comm.rank == 0:
                target = Vector(nblocks, blocklen, 2 * blocklen, DOUBLE)
                data = np.ones(nblocks * blocklen)
                t0 = comm.engine.now
                yield from win.put(data, 1, target, 1, method=method)
                yield from win.fence()
                return comm.engine.now - t0
            yield from win.fence()
            return None

        return cluster.run(main)[0]

    # sparse: 4096 single-double blocks
    sparse_pack = run(4096, 1, "pack")
    sparse_rdma = run(4096, 1, "multi_rdma")
    assert sparse_pack < sparse_rdma
    # dense: 2 large blocks
    dense_pack = run(2, 8192, "pack")
    dense_rdma = run(2, 8192, "multi_rdma")
    assert dense_rdma <= dense_pack * 1.05


def test_get():
    cluster = make_cluster(2)

    def main(comm):
        local = np.full(6, float(comm.rank + 1) * 10)
        win = yield from Win.create(comm, local)
        yield from win.fence()
        out = np.zeros(6)
        if comm.rank == 0:
            yield from win.get(out, target_rank=1)
        yield from win.fence()
        return out

    results = cluster.run(main)
    assert np.all(results[0] == 20.0)


def test_accumulate_from_many_origins():
    n = 4
    cluster = make_cluster(n)

    def main(comm):
        local = np.zeros(4)
        win = yield from Win.create(comm, local)
        yield from win.fence()
        # everyone accumulates into rank 0
        yield from win.accumulate(np.full(4, float(comm.rank + 1)), 0)
        yield from win.fence()
        return local.copy()

    results = cluster.run(main)
    assert np.all(results[0] == float(sum(range(1, n + 1))))


def test_lock_unlock_passive_target():
    cluster = make_cluster(3)

    def main(comm):
        local = np.zeros(2)
        win = yield from Win.create(comm, local)
        yield from win.fence()
        if comm.rank != 0:
            yield from win.lock(0)
            yield from win.put(np.full(2, float(comm.rank)), 0)
            yield from win.unlock(0)
        yield from win.fence()
        return local.copy()

    results = cluster.run(main)
    # last unlocking rank wins; either way data is consistent (1 or 2)
    assert results[0][0] in (1.0, 2.0)
    assert results[0][0] == results[0][1]


def test_size_mismatch_rejected():
    cluster = make_cluster(2)

    def main(comm):
        local = np.zeros(4)
        win = yield from Win.create(comm, local)
        if comm.rank == 0:
            yield from win.put(np.zeros(2), 1, DOUBLE, 4)
        yield from win.fence()

    with pytest.raises(MPIError):
        cluster.run(main)


def test_invalid_method_rejected():
    cluster = make_cluster(2)

    def main(comm):
        local = np.zeros(4)
        win = yield from Win.create(comm, local)
        if comm.rank == 0:
            yield from win.put(np.zeros(4), 1, method="teleport")
        yield from win.fence()

    with pytest.raises(MPIError):
        cluster.run(main)


def test_two_windows_are_independent():
    cluster = make_cluster(2)

    def main(comm):
        a = np.zeros(2)
        b = np.zeros(2)
        win_a = yield from Win.create(comm, a)
        win_b = yield from Win.create(comm, b)
        if comm.rank == 0:
            yield from win_a.put(np.full(2, 1.0), 1)
            yield from win_b.put(np.full(2, 2.0), 1)
        yield from win_a.fence()
        yield from win_b.fence()
        return a.copy(), b.copy()

    a, b = cluster.run(main)[1]
    assert np.all(a == 1.0) and np.all(b == 2.0)
