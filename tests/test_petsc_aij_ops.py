"""Tests for AIJ matrix operations (transpose-mult, scale, shift, norm)
and the BiCGStab solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mpi import Cluster, MPIConfig
from repro.petsc import Layout, PETScError, Vec
from repro.petsc.aij import AIJMat
from repro.petsc.ksp import BiCGStab
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def random_matrix(n, density, seed):
    rng = np.random.default_rng(seed)
    M = sp.random(n, n, density=density, random_state=rng, format="coo")
    return M


def build_distributed(comm, M, n):
    """Distribute COO entries round-robin over the setter ranks: every
    entry is staged exactly once, usually far from its owner."""
    lay = Layout(comm.size, n)
    A = AIJMat(comm, lay)
    idx = np.arange(len(M.data))
    mine = idx % comm.size == comm.rank
    A.set_values(M.row[mine], M.col[mine], M.data[mine])
    return lay, A


@pytest.mark.parametrize("nranks", [1, 3])
def test_mult_transpose_matches_scipy(nranks):
    n = 30
    M = random_matrix(n, 0.15, seed=5)
    cluster = make_cluster(nranks)
    xg = np.random.default_rng(1).random(n)

    def main(comm):
        lay, A = build_distributed(comm, M, n)
        yield from A.assemble()
        x = Vec(comm, lay)
        start, end = x.owned_range
        x.local[:] = xg[start:end]
        y = Vec(comm, lay)
        yield from A.mult_transpose(x, y)
        return y.local.copy()

    got = np.concatenate(cluster.run(main))
    expect = M.tocsr().T @ xg
    assert np.allclose(got, expect)


def test_scale_and_shift():
    n = 12
    cluster = make_cluster(2)

    def main(comm):
        lay = Layout(comm.size, n)
        A = AIJMat(comm, lay)
        start, end = lay.start(comm.rank), lay.end(comm.rank)
        for i in range(start, end):
            A.set_value(i, (i + 1) % n, 2.0)
        yield from A.assemble()
        A.scale(3.0)
        A.shift(1.0)
        x = Vec(comm, lay)
        yield from x.set(1.0)
        y = Vec(comm, lay)
        yield from A.mult(x, y)
        return y.local.copy()

    got = np.concatenate(cluster.run(main))
    # each row: 2*3 off-diagonal + 1 diagonal = 7
    assert np.all(got == 7.0)


def test_shift_nonsquare_rejected():
    cluster = make_cluster(2)

    def main(comm):
        A = AIJMat(comm, Layout(comm.size, 4), Layout(comm.size, 6))
        yield from A.assemble()
        A.shift(1.0)

    with pytest.raises(PETScError):
        cluster.run(main)


def test_frobenius_norm():
    n = 16
    M = random_matrix(n, 0.2, seed=9)
    cluster = make_cluster(4)

    def main(comm):
        _lay, A = build_distributed(comm, M, n)
        yield from A.assemble()
        result = yield from A.norm_frobenius()
        return result

    got = cluster.run(main)[0]
    expect = np.sqrt((M.data**2).sum())
    assert got == pytest.approx(expect)


def test_bicgstab_solves_nonsymmetric_system():
    n = 40
    cluster = make_cluster(4)

    def main(comm):
        lay = Layout(comm.size, n)
        A = AIJMat(comm, lay)
        start, end = lay.start(comm.rank), lay.end(comm.rank)
        for i in range(start, end):
            A.set_value(i, i, 5.0)
            if i > 0:
                A.set_value(i, i - 1, -2.5)
            if i < n - 1:
                A.set_value(i, i + 1, -1.0)
        yield from A.assemble()
        b = Vec(comm, lay)
        b.local[:] = 1.0
        x = Vec(comm, lay)
        result = yield from BiCGStab(A, b, x, rtol=1e-10, maxits=300)
        return result, x.local.copy()

    results = cluster.run(main)
    assert results[0][0].converged
    got = np.concatenate([r[1] for r in results])
    M = np.zeros((n, n))
    for i in range(n):
        M[i, i] = 5.0
        if i > 0:
            M[i, i - 1] = -2.5
        if i < n - 1:
            M[i, i + 1] = -1.0
    assert np.allclose(got, np.linalg.solve(M, np.ones(n)), atol=1e-7)


def test_bicgstab_with_preconditioner_converges_faster():
    from repro.petsc import BlockJacobiPC

    n = 64
    cluster = make_cluster(2)

    def main(comm):
        lay = Layout(comm.size, n)
        A = AIJMat(comm, lay)
        start, end = lay.start(comm.rank), lay.end(comm.rank)
        h2 = float(n + 1) ** 2
        for i in range(start, end):
            A.set_value(i, i, 2.0 * h2)
            if i > 0:
                A.set_value(i, i - 1, -h2 * 1.2)  # mildly nonsymmetric
            if i < n - 1:
                A.set_value(i, i + 1, -h2 * 0.8)
        yield from A.assemble()
        b = Vec(comm, lay)
        b.local[:] = 1.0
        x1 = Vec(comm, lay)
        plain = yield from BiCGStab(A, b, x1, rtol=1e-8, maxits=500)
        x2 = Vec(comm, lay)
        prec = yield from BiCGStab(A, b, x2, rtol=1e-8, maxits=500,
                                   pc=BlockJacobiPC(A))
        return plain, prec

    plain, prec = cluster.run(main)[0]
    assert plain.converged and prec.converged
    assert prec.iterations < plain.iterations


def test_bicgstab_zero_rhs():
    cluster = make_cluster(1)

    def main(comm):
        lay = Layout(1, 4)
        A = AIJMat(comm, lay)
        for i in range(4):
            A.set_value(i, i, 1.0)
        yield from A.assemble()
        b = Vec(comm, lay)
        x = Vec(comm, lay)
        result = yield from BiCGStab(A, b, x, atol=1e-30)
        return result.iterations

    assert cluster.run(main)[0] == 0
