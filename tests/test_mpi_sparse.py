"""Tests for the NBX sparse dynamic data exchange (``sparse_alltoall``)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import DOUBLE, TypedBuffer, Vector
from repro.faults.plan import FaultPlan
from repro.mpi import Cluster, MPIConfig, MPIError, RankFailedError
from repro.mpi.algorithms import SelectionContext
from repro.mpi.algorithms.policies import AdaptivePolicy, MpichPolicy
from repro.mpi.algorithms.tuning import bucket_key
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)

ALGORITHMS = ["dense", "nbx", "nbx_binned"]


def run_sparse(n, pattern, algorithm=None, config=None, fault_plan=None,
               return_exceptions=False):
    """Run one exchange; ``pattern(rank, n)`` builds each rank's payloads."""
    cluster = Cluster(n, config=config or MPIConfig.optimized(), cost=QUIET,
                      heterogeneous=False, fault_plan=fault_plan)

    def main(comm):
        out = yield from comm.sparse_alltoall(pattern(comm.rank, n),
                                              algorithm=algorithm)
        return {src: np.asarray(arr).copy() for src, arr in out.items()}

    return cluster, cluster.run(main, return_exceptions=return_exceptions)


def ring_pattern(rank, n):
    return {(rank + 1) % n: np.full(4, float(rank))}


def sparse_pattern(rank, n):
    """Every other rank is silent; senders hit two peers with different
    volumes (exercises zero-entry ranks and nonuniform sizes)."""
    if rank % 2:
        return {}
    return {
        (rank + 1) % n: np.full(3, float(rank + 1)),
        (rank + 2) % n: np.arange(7, dtype=np.float64) + rank,
    }


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n", [2, 3, 5, 8])
def test_ring_correct(algorithm, n):
    _, results = run_sparse(n, ring_pattern, algorithm=algorithm)
    for rank, got in enumerate(results):
        pred = (rank - 1) % n
        if n == 1:
            continue
        assert set(got) == {pred}
        np.testing.assert_array_equal(got[pred], np.full(4, float(pred)))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n", [3, 5, 6])  # includes non-power-of-two
def test_sparse_pattern_with_silent_ranks(algorithm, n):
    _, results = run_sparse(n, sparse_pattern, algorithm=algorithm)
    expect = [{} for _ in range(n)]
    for src in range(n):
        for dst, arr in sparse_pattern(src, n).items():
            expect[dst][src] = arr
    for rank, got in enumerate(results):
        assert set(got) == set(expect[rank])
        for src in got:
            np.testing.assert_array_equal(got[src], expect[rank][src])


@pytest.mark.parametrize("n", [2, 5, 8])
def test_algorithms_byte_identical(n):
    baseline = None
    for algorithm in ALGORITHMS:
        _, results = run_sparse(n, sparse_pattern, algorithm=algorithm)
        if baseline is None:
            baseline = results
            continue
        for got, want in zip(results, baseline):
            assert set(got) == set(want)
            for src in got:
                np.testing.assert_array_equal(got[src], want[src])


def test_self_entry_and_zero_byte_elision():
    def pattern(rank, n):
        return {rank: np.array([1.5, 2.5]),          # self-copy
                (rank + 1) % n: np.empty(0)}         # elided

    _, results = run_sparse(4, pattern, algorithm="nbx")
    for rank, got in enumerate(results):
        assert set(got) == {rank}
        np.testing.assert_array_equal(got[rank], [1.5, 2.5])


def test_noncontiguous_typed_buffer_payload():
    """A strided Vector send arrives as its packed float64 image."""
    stride, count = 3, 5

    def pattern(rank, n):
        base = np.arange(stride * count, dtype=np.float64) + 100 * rank
        vec = Vector(count=count, blocklength=1, stride=stride, base=DOUBLE)
        return {(rank + 1) % n: TypedBuffer(base, vec, 1)}

    for algorithm in ALGORITHMS:
        _, results = run_sparse(4, pattern, algorithm=algorithm)
        for rank, got in enumerate(results):
            pred = (rank - 1) % 4
            want = (np.arange(stride * count, dtype=np.float64)
                    + 100 * pred)[::stride]
            np.testing.assert_array_equal(got[pred], want)


@given(st.integers(2, 6), st.data())
@settings(max_examples=20, deadline=None)
def test_hypothesis_byte_identity_across_algorithms(n, data):
    """Random sparse patterns (zero-entry ranks, self entries, mixed
    volumes): every algorithm returns the identical result map."""
    matrix = {}
    for src in range(n):
        peers = data.draw(st.lists(st.integers(0, n - 1), unique=True,
                                   max_size=n), label=f"peers{src}")
        matrix[src] = {
            dst: np.asarray(data.draw(
                st.lists(st.floats(-1e6, 1e6, allow_nan=False,
                                   width=64), min_size=1, max_size=9),
                label=f"payload{src}->{dst}"), dtype=np.float64)
            for dst in peers
        }

    def pattern(rank, _n):
        return dict(matrix[rank])

    baseline = None
    for algorithm in ALGORITHMS:
        _, results = run_sparse(n, pattern, algorithm=algorithm)
        if baseline is None:
            baseline = results
            continue
        for got, want in zip(results, baseline):
            assert set(got) == set(want)
            for src in got:
                np.testing.assert_array_equal(got[src], want[src])


def test_invalid_destination_and_odd_bytes_raise():
    def bad_dst(rank, n):
        return {n + 3: np.ones(2)}

    with pytest.raises(MPIError, match="invalid destination"):
        run_sparse(2, bad_dst, algorithm="nbx")

    def odd_bytes(rank, n):
        return {(rank + 1) % n: np.ones(3, dtype=np.float32)}

    with pytest.raises(MPIError, match="float64"):
        run_sparse(2, odd_bytes, algorithm="nbx")


def test_policy_selection_is_rank_uniform():
    """mpich stays on the dense protocol; adaptive picks an NBX variant
    from rank-uniform inputs, binned only on mixed volume sets."""
    cost = CostModel(cpu_noise=0.0)
    config = MPIConfig.optimized()
    uniform = SelectionContext(collective="sparse_alltoall", size=8,
                               volumes=(0, 64, 0, 64, 0, 0, 0, 0),
                               dtype_size=8, config=config, cost=cost)
    threshold = int(cost.small_message_threshold)
    mixed = SelectionContext(collective="sparse_alltoall", size=8,
                             volumes=(0, 8, 0, 8 * threshold, 0, 0, 0, 0),
                             dtype_size=8, config=config, cost=cost)
    assert MpichPolicy(config).decide(uniform).algorithm == "dense"
    assert AdaptivePolicy(config).decide(uniform).algorithm == "nbx"
    assert AdaptivePolicy(config).decide(mixed).algorithm == "nbx_binned"
    # the tuning bucket must not depend on per-rank volumes: a trained
    # table answers identically on every rank of one exchange
    assert bucket_key(uniform) == bucket_key(mixed)
    assert bucket_key(uniform).endswith("|uniform")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_crash_surfaces_uniformly(algorithm):
    n, victim = 5, 2
    plan = FaultPlan(seed=7).crash(victim, at_op=2, reason="test crash")

    def pattern(rank, size):
        return {(rank + 1) % size: np.full(6, float(rank)),
                (rank + 2) % size: np.full(2, float(rank))}

    _, outcomes = run_sparse(n, pattern, algorithm=algorithm,
                             fault_plan=plan, return_exceptions=True)
    for rank, out in enumerate(outcomes):
        assert isinstance(out, RankFailedError), (rank, out)
        assert out.rank == victim


def test_consensus_rounds_metric_observed():
    from repro.prof import Profiler

    n = 6
    cluster = Cluster(n, config=MPIConfig.optimized(), cost=QUIET,
                      heterogeneous=False)
    prof = Profiler.attach(cluster)

    def main(comm):
        out = yield from comm.sparse_alltoall(
            ring_pattern(comm.rank, n), algorithm="nbx")
        return len(out)

    cluster.run(main)
    hist = prof.metrics.histogram("repro_nbx_consensus_rounds")
    assert hist.count == n          # one observation per rank
    assert hist.sum >= n            # at least one wakeup each
