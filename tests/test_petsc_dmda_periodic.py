"""Tests for periodic DMDA ghost exchange."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import DMDA, PETScError
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def exchange_and_check(nranks, dims, periodic, stencil="star", width=1,
                       backend="datatype"):
    """Ghost exchange against a numpy 'wrap' padding oracle."""
    cluster = make_cluster(nranks)

    def main(comm):
        da = DMDA(comm, dims, stencil=stencil, stencil_width=width,
                  periodic=periodic)
        v = da.create_global_vec()
        lo, hi = da.owned_box()
        z, y, x = np.meshgrid(
            np.arange(lo[0], hi[0]), np.arange(lo[1], hi[1]),
            np.arange(lo[2], hi[2]), indexing="ij",
        )
        v.local[:] = (z * 10000 + y * 100 + x).astype(np.float64).reshape(-1)
        larr = da.create_local_array()
        yield from da.global_to_local(v, larr, backend=backend)
        return da.owned_box(), da.ghosted_box(), larr

    results = cluster.run(main)
    dims3 = [1] * (3 - len(dims)) + list(dims)
    per3 = [False] * (3 - len(dims)) + (
        [periodic] * len(dims) if isinstance(periodic, bool) else list(periodic)
    )
    z, y, x = np.meshgrid(*[np.arange(s) for s in dims3], indexing="ij")
    full = (z * 10000 + y * 100 + x).astype(np.float64)
    pad = [(width, width) if s > 1 else (0, 0) for s in dims3]
    modes = ["wrap" if p else "constant" for p in per3]
    padded = full
    for axis in range(3):
        p = [(0, 0)] * 3
        p[axis] = pad[axis]
        padded = np.pad(padded, p, mode=modes[axis])
    off = [p[0] for p in pad]
    for rank, ((lo, hi), (glo, ghi), larr) in enumerate(results):
        expect = padded[
            glo[0] + off[0]:ghi[0] + off[0],
            glo[1] + off[1]:ghi[1] + off[1],
            glo[2] + off[2]:ghi[2] + off[2],
        ]
        got = larr.reshape(expect.shape)
        coords = np.meshgrid(
            *[np.arange(glo[d], ghi[d]) for d in range(3)], indexing="ij"
        )
        outside = sum(
            ((coords[d] < lo[d]) | (coords[d] >= hi[d])).astype(int)
            for d in range(3)
        )
        mask = outside <= 1 if stencil == "star" else outside >= 0
        assert np.array_equal(got[mask], expect[mask]), rank


@pytest.mark.parametrize("backend", ["hand_tuned", "datatype"])
def test_periodic_1d_ring(backend):
    exchange_and_check(4, (16,), True, backend=backend)


@pytest.mark.parametrize("stencil", ["star", "box"])
def test_periodic_2d_torus(stencil):
    exchange_and_check(4, (8, 8), True, stencil=stencil)


def test_periodic_3d():
    exchange_and_check(8, (8, 8, 8), True, stencil="box")


def test_mixed_periodicity():
    exchange_and_check(4, (8, 8), [True, False], stencil="box")


def test_periodic_single_rank_wraps_onto_itself():
    """With one rank everything wraps locally (pure local pairs)."""
    exchange_and_check(1, (6, 6), True, stencil="box")


def test_periodic_two_ranks_double_adjacency():
    """With two ranks in a periodic dim, the same peer is both the left and
    the right neighbour -- two exchange segments with one peer."""
    exchange_and_check(2, (8,), True)


def test_periodic_width_2():
    exchange_and_check(4, (12, 12), True, stencil="box", width=2)


def test_periodic_too_small_rejected():
    cluster = make_cluster(1)

    def main(comm):
        DMDA(comm, (3,), stencil_width=2, periodic=True)
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)


def test_periodic_length_mismatch_rejected():
    cluster = make_cluster(1)

    def main(comm):
        DMDA(comm, (8, 8), periodic=[True])
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)


def test_nonperiodic_unchanged_by_default():
    exchange_and_check(4, (8, 8), False, stencil="box")
