"""FaultPlan DSL: validation, matching, determinism."""

import pytest

from repro.faults import FaultPlan, RankFault, WireRule


def test_builder_chains_and_collects_rules():
    plan = (
        FaultPlan(seed=3)
        .drop(probability=0.1)
        .corrupt(probability=0.2, src=1)
        .duplicate(nth=4)
        .delay_spike(delay=1e-4, dst=2)
        .degrade(scale=4.0, after=1e-3)
        .crash(5, at_time=2e-3)
        .hang(6, at_op=7, detect_after=1e-3)
    )
    assert [r.kind for r in plan.wire_rules] == [
        "drop", "corrupt", "duplicate", "delay", "degrade"
    ]
    assert [f.kind for f in plan.rank_faults] == ["crash", "hang"]
    assert bool(plan)
    assert not bool(FaultPlan())


def test_wire_rule_validation():
    with pytest.raises(ValueError):
        WireRule("explode")
    with pytest.raises(ValueError):
        WireRule("drop", probability=1.5)
    with pytest.raises(ValueError):
        WireRule("drop", nth=0)
    with pytest.raises(ValueError):
        WireRule("delay", delay=-1.0)
    with pytest.raises(ValueError):
        WireRule("degrade", scale=0.0)


def test_rank_fault_validation():
    with pytest.raises(ValueError):
        RankFault("crash", 0)  # no trigger
    with pytest.raises(ValueError):
        RankFault("crash", 0, at_time=1.0, at_op=3)  # both triggers
    with pytest.raises(ValueError):
        RankFault("crash", 0, at_op=0)
    with pytest.raises(ValueError):
        RankFault("crash", 0, at_time=1.0, detect_after=1.0)  # hang-only
    RankFault("hang", 0, at_time=1.0, detect_after=1.0)  # fine


def test_wire_rule_matching_filters():
    rule = WireRule("drop", src=1, dst=2, after=1.0, until=2.0, min_bytes=8)
    assert rule.matches(1, 2, 8, 1.5)
    assert not rule.matches(0, 2, 8, 1.5)  # wrong src
    assert not rule.matches(1, 3, 8, 1.5)  # wrong dst
    assert not rule.matches(1, 2, 0, 1.5)  # too small (zero-byte ack)
    assert not rule.matches(1, 2, 8, 0.5)  # before window
    assert not rule.matches(1, 2, 8, 2.0)  # window is half-open


def test_random_plan_is_deterministic():
    a = FaultPlan.random(42, 8, crash=True)
    b = FaultPlan.random(42, 8, crash=True)
    assert a.wire_rules == b.wire_rules
    assert a.rank_faults == b.rank_faults
    c = FaultPlan.random(43, 8, crash=True)
    assert (a.rank_faults != c.rank_faults
            or a.wire_rules != c.wire_rules or True)  # seeds may collide
    # the victim is never rank 0 and always in range
    (fault,) = a.rank_faults
    assert 1 <= fault.rank < 8


def test_describe_mentions_every_fault():
    plan = FaultPlan().drop(probability=0.5).crash(3, at_time=1e-3)
    text = plan.describe()
    assert "drop" in text and "p=0.5" in text
    assert "crash" in text and "rank=3" in text
    assert FaultPlan().describe() == "(empty plan)"
