"""Tests for the message-trace instrumentation."""

import numpy as np

from repro.datatypes import DOUBLE, TypedBuffer
from repro.mpi import Cluster, MPIConfig
from repro.mpi.trace import MessageTrace
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n, config=None):
    return Cluster(n, config=config or MPIConfig.optimized(), cost=QUIET,
                   heterogeneous=False)


def test_trace_records_p2p_messages():
    cluster = make_cluster(2)
    trace = MessageTrace.attach(cluster)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(100), dest=1)
        else:
            buf = np.zeros(100)
            yield from comm.recv(buf, source=0)

    cluster.run(main)
    assert len(trace) == 1
    rec = trace.records[0]
    assert (rec.src, rec.dst, rec.nbytes) == (0, 1, 800)
    assert rec.t_arrived > rec.t_sent


def test_causal_msg_ids_thread_through_to_the_trace():
    cluster = make_cluster(2)
    trace = MessageTrace.attach(cluster)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(100), dest=1)
            yield from comm.send(np.ones(50), dest=1)
        else:
            buf = np.zeros(100)
            yield from comm.recv(buf, source=0)
            buf2 = np.zeros(50)
            yield from comm.recv(buf2, source=0)

    cluster.run(main)
    # every p2p wire chunk carries a causal id; distinct messages get
    # distinct, monotonically increasing ids
    ids = [rec.msg_id for rec in trace.records]
    assert all(i is not None for i in ids)
    assert len(set(ids)) == 2
    assert ids == sorted(ids)
    by_msg = trace.by_message()
    assert set(by_msg) == set(ids)
    sizes = sorted(sum(r.nbytes for r in recs) for recs in by_msg.values())
    assert sizes == [400, 800]


def test_pipelined_chunks_share_one_msg_id():
    # a large nonuniform payload crosses the wire as several pipeline
    # chunks under the optimized config; all must share the send's msg_id
    cluster = make_cluster(2, config=MPIConfig.optimized())
    trace = MessageTrace.attach(cluster)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(200_000), dest=1)
        else:
            buf = np.zeros(200_000)
            yield from comm.recv(buf, source=0)

    cluster.run(main)
    by_msg = trace.by_message()
    assert len(by_msg) == 1
    chunks, = by_msg.values()
    assert sum(r.nbytes for r in chunks) == 1_600_000
    # raw transfers (no id) are excluded from the grouping
    assert all(r.msg_id is not None for r in chunks)


def test_matrix_and_counts():
    cluster = make_cluster(3)
    trace = MessageTrace.attach(cluster)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(10), dest=1)
            yield from comm.send(np.zeros(20), dest=2)
            yield from comm.send(np.zeros(30), dest=2)
        elif comm.rank == 1:
            buf = np.zeros(10)
            yield from comm.recv(buf, source=0)
        else:
            a, b = np.zeros(20), np.zeros(30)
            yield from comm.recv(a, source=0)
            yield from comm.recv(b, source=0)

    cluster.run(main)
    m = trace.matrix()
    assert m[0, 1] == 80
    assert m[0, 2] == 400
    counts = trace.message_counts()
    assert counts[0, 2] == 2
    assert trace.total_bytes() == 480
    assert trace.busiest_pair() == ((0, 2), 400)


def test_zero_byte_counting_baseline_vs_optimized():
    """The trace exposes exactly what the binned Alltoallw removes."""

    def run(config):
        cluster = make_cluster(8, config)
        trace = MessageTrace.attach(cluster)

        def main(comm):
            n = comm.size
            succ, pred = (comm.rank + 1) % n, (comm.rank - 1) % n
            sendbuf = np.zeros((n, 10))
            recvbuf = np.zeros((n, 10))
            sendspecs = [None] * n
            recvspecs = [None] * n
            for peer in (succ, pred):
                sendspecs[peer] = TypedBuffer(sendbuf, DOUBLE, 10, offset_bytes=peer * 80)
                recvspecs[peer] = TypedBuffer(recvbuf, DOUBLE, 10, offset_bytes=peer * 80)
            yield from comm.alltoallw(sendspecs, recvspecs)

        cluster.run(main)
        return trace

    base = run(MPIConfig.baseline())
    opt = run(MPIConfig.optimized())
    assert base.zero_byte_count() == 8 * 5  # non-partners get zero-byte syncs
    assert opt.zero_byte_count() == 0
    # real payload identical
    assert base.total_bytes() == opt.total_bytes()


def test_timeline_and_summary():
    cluster = make_cluster(2)
    trace = MessageTrace.attach(cluster)

    def main(comm):
        if comm.rank == 0:
            for _ in range(5):
                yield from comm.send(np.zeros(100), dest=1)
        else:
            for _ in range(5):
                buf = np.zeros(100)
                yield from comm.recv(buf, source=0)

    cluster.run(main)
    edges, hist = trace.timeline(bins=4)
    assert edges.shape == (5,)
    assert np.all(np.diff(edges) > 0)
    assert edges[0] == 0.0
    assert hist.sum() == 5 * 800
    text = trace.summary()
    assert "messages : 5" in text
    assert "busiest  : 0 -> 1" in text


def test_empty_trace():
    trace = MessageTrace(4)
    assert len(trace) == 0
    assert trace.busiest_pair() is None
    edges, hist = trace.timeline()
    assert edges.shape == (11,)
    assert hist.sum() == 0
    assert trace.zero_byte_count() == 0


def test_timeline_zero_duration():
    """All messages at t=0 must not divide by zero."""
    from repro.mpi.trace import TraceRecord

    trace = MessageTrace(2)
    trace.records.append(TraceRecord(0.0, 0.0, 0, 1, 0, 64))
    edges, hist = trace.timeline(bins=3)
    assert edges[-1] == 1.0
    assert hist.tolist() == [64, 0, 0]


def test_timeline_rejects_bad_bins():
    import pytest

    trace = MessageTrace(2)
    with pytest.raises(ValueError):
        trace.timeline(bins=0)


def test_double_attach_does_not_monkeypatch():
    """Regression: two traces on one cluster each see every message once.

    The old implementation wrapped ``cluster.net.transfer``; a second
    attach wrapped the wrapper, so traces double-counted.  The observer
    API keeps ``net.transfer`` untouched.
    """
    cluster = make_cluster(2)
    from repro.simtime.network import NetworkModel

    t1 = MessageTrace.attach(cluster)
    t2 = MessageTrace.attach(cluster)
    # no monkey-patching: net.transfer is still the class method
    assert cluster.net.transfer.__func__ is NetworkModel.transfer

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(100), dest=1)
        else:
            buf = np.zeros(100)
            yield from comm.recv(buf, source=0)

    cluster.run(main)
    assert len(t1) == 1
    assert len(t2) == 1
    assert t1.records[0].nbytes == t2.records[0].nbytes == 800
