"""Tests for Alltoallw: round-robin baseline vs binned optimisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import DOUBLE, TypedBuffer
from repro.mpi import Cluster, MPIConfig
from repro.mpi.collectives.alltoallw import alltoallw
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def run_ring_exchange(n, config, count=100, algorithm=None, heterogeneous=False, seed=0):
    """Each rank exchanges `count` doubles with its ring neighbours only
    (the paper's Fig. 15 workload)."""
    cluster = Cluster(n, config=config, cost=QUIET,
                      heterogeneous=heterogeneous, seed=seed)

    def main(comm):
        succ = (comm.rank + 1) % n
        pred = (comm.rank - 1) % n
        sendbuf = np.full((n, count), float(comm.rank))
        recvbuf = np.zeros((n, count))
        sendspecs = [None] * n
        recvspecs = [None] * n
        for peer in {succ, pred}:
            sendspecs[peer] = TypedBuffer(sendbuf, DOUBLE, count,
                                          offset_bytes=peer * count * 8)
            recvspecs[peer] = TypedBuffer(recvbuf, DOUBLE, count,
                                          offset_bytes=peer * count * 8)
        yield from alltoallw(comm, sendspecs, recvspecs, algorithm=algorithm)
        return recvbuf

    results = cluster.run(main)
    return results, cluster.elapsed


@pytest.mark.parametrize("algorithm", ["round_robin", "binned"])
@pytest.mark.parametrize("n", [3, 4, 8])
def test_ring_exchange_correct(algorithm, n):
    results, _ = run_ring_exchange(n, MPIConfig.optimized(), algorithm=algorithm)
    for rank, recvbuf in enumerate(results):
        succ, pred = (rank + 1) % n, (rank - 1) % n
        assert np.all(recvbuf[succ] == float(succ))
        assert np.all(recvbuf[pred] == float(pred))
        others = [i for i in range(n) if i not in (succ, pred)]
        for i in others:
            assert np.all(recvbuf[i] == 0.0)


def test_full_exchange_correct_both_algorithms():
    n = 5
    count = 20

    def build(comm):
        sendbuf = np.arange(n * count, dtype=np.float64) + comm.rank * 1000
        recvbuf = np.zeros(n * count)
        sendspecs = [
            TypedBuffer(sendbuf, DOUBLE, count, offset_bytes=i * count * 8)
            for i in range(n)
        ]
        recvspecs = [
            TypedBuffer(recvbuf, DOUBLE, count, offset_bytes=i * count * 8)
            for i in range(n)
        ]
        return sendbuf, recvbuf, sendspecs, recvspecs

    for algorithm in ("round_robin", "binned"):
        cluster = Cluster(n, config=MPIConfig.optimized(), cost=QUIET,
                          heterogeneous=False)

        def main(comm):
            sendbuf, recvbuf, sendspecs, recvspecs = build(comm)
            yield from alltoallw(comm, sendspecs, recvspecs, algorithm=algorithm)
            return recvbuf

        results = cluster.run(main)
        for rank, recvbuf in enumerate(results):
            for src in range(n):
                expect = np.arange(rank * count, (rank + 1) * count) + src * 1000
                got = recvbuf[src * count : (src + 1) * count]
                assert np.array_equal(got, expect), (rank, src)


def test_binned_faster_with_skew():
    """With heterogeneous nodes, exempting the zero bin avoids paying the
    skew of non-partners (paper Fig. 15)."""
    n = 16
    _, t_base = run_ring_exchange(n, MPIConfig.baseline(), heterogeneous=True)
    _, t_opt = run_ring_exchange(n, MPIConfig.optimized(), heterogeneous=True)
    assert t_opt < t_base


def test_zero_bin_sends_no_messages():
    n = 8
    cluster_base = Cluster(n, config=MPIConfig.baseline(), cost=QUIET, heterogeneous=False)
    cluster_opt = Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)

    def main(comm):
        succ = (comm.rank + 1) % n
        pred = (comm.rank - 1) % n
        sendbuf = np.zeros((n, 10))
        recvbuf = np.zeros((n, 10))
        sendspecs = [None] * n
        recvspecs = [None] * n
        for peer in {succ, pred}:
            sendspecs[peer] = TypedBuffer(sendbuf, DOUBLE, 10, offset_bytes=peer * 80)
            recvspecs[peer] = TypedBuffer(recvbuf, DOUBLE, 10, offset_bytes=peer * 80)
        yield from comm.alltoallw(sendspecs, recvspecs)

    cluster_base.run(main)
    cluster_opt.run(main)
    # baseline: every rank messages every other rank; optimised: only partners
    assert cluster_base.net.messages_on_wire == n * (n - 1)
    assert cluster_opt.net.messages_on_wire == n * 2


def test_small_before_large_ordering():
    """A small-message peer must not wait behind a large noncontiguous one."""
    n = 3
    # rank 0 sends a big noncontiguous message to rank 1 (who is *earlier*
    # in round-robin order) and a tiny one to rank 2.
    from repro.datatypes import Vector

    def timings(config):
        cluster = Cluster(n, config=config, cost=QUIET, heterogeneous=False)
        recv_done = {}

        def main(comm):
            sendspecs = [None] * n
            recvspecs = [None] * n
            big_n = 40_000
            if comm.rank == 0:
                big = np.zeros((big_n, 2))
                sendspecs[1] = TypedBuffer(big, Vector(big_n, 1, 2, DOUBLE))
                small = np.zeros(4)
                sendspecs[2] = TypedBuffer(small, DOUBLE, 4)
            elif comm.rank == 1:
                buf = np.zeros(big_n)
                recvspecs[0] = TypedBuffer(buf, DOUBLE, big_n)
            else:
                buf = np.zeros(4)
                recvspecs[0] = TypedBuffer(buf, DOUBLE, 4)
            yield from comm.alltoallw(sendspecs, recvspecs)
            recv_done[comm.rank] = comm.engine.now

        cluster.run(main)
        return recv_done

    base = timings(MPIConfig.baseline())
    opt = timings(MPIConfig.optimized())
    # the small-message peer (rank 2) finishes much earlier when small
    # messages are processed first
    assert opt[2] < base[2]


def test_spec_length_validated():
    cluster = Cluster(2, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)

    def main(comm):
        yield from comm.alltoallw([None], [None, None])

    with pytest.raises(Exception):
        cluster.run(main)


def test_self_exchange_mismatch_rejected():
    cluster = Cluster(1, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)

    def main(comm):
        a = np.zeros(4)
        b = np.zeros(2)
        yield from comm.alltoallw(
            [TypedBuffer(a, DOUBLE, 4)], [TypedBuffer(b, DOUBLE, 2)]
        )

    with pytest.raises(Exception):
        cluster.run(main)


@given(st.integers(2, 6), st.data())
@settings(max_examples=25, deadline=None)
def test_property_random_patterns_agree(n, data):
    """Random sparse communication matrices deliver identically under both
    algorithms."""
    pattern = [
        [data.draw(st.integers(0, 12)) for _ in range(n)] for _ in range(n)
    ]
    for r in range(n):
        pattern[r][r] = 0

    def run(algorithm):
        cluster = Cluster(n, config=MPIConfig.optimized(), cost=QUIET,
                          heterogeneous=False)

        def main(comm):
            counts_out = pattern[comm.rank]
            counts_in = [pattern[src][comm.rank] for src in range(n)]
            out_disp = np.concatenate(([0], np.cumsum(counts_out[:-1]))).astype(int)
            in_disp = np.concatenate(([0], np.cumsum(counts_in[:-1]))).astype(int)
            sendbuf = np.arange(sum(counts_out), dtype=np.float64) + comm.rank * 100
            recvbuf = np.full(max(1, sum(counts_in)), -1.0)
            sendspecs = [
                TypedBuffer(sendbuf, DOUBLE, counts_out[i], offset_bytes=int(out_disp[i]) * 8)
                if counts_out[i] else None
                for i in range(n)
            ]
            recvspecs = [
                TypedBuffer(recvbuf, DOUBLE, counts_in[i], offset_bytes=int(in_disp[i]) * 8)
                if counts_in[i] else None
                for i in range(n)
            ]
            yield from alltoallw(comm, sendspecs, recvspecs, algorithm=algorithm)
            return recvbuf

        return cluster.run(main)

    res_rr = run("round_robin")
    res_bin = run("binned")
    for a, b in zip(res_rr, res_bin):
        assert np.array_equal(a, b)
