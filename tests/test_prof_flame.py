"""Tests for the collapsed-stack flamegraph export (``repro.prof.flame``)."""

from types import SimpleNamespace

import pytest

from repro.prof.critical import CriticalPath, Segment
from repro.prof.flame import (
    collapsed_stacks,
    critical_stacks,
    render_collapsed,
    write_flamegraph,
)
from repro.prof.spans import Tracer


def scripted_profiler():
    """rank 0: collective [0, 10] containing pack [0, 2] and compute [2, 3];
    rank 1 [io] lane: unpack [4, 6]."""
    clock = SimpleNamespace(now=0.0)
    tracer = Tracer(clock)
    coll = tracer.span("collective", "allgatherv", 0)
    sp = coll.__enter__()
    with tracer.span("cpu", "pack", 0):
        clock.now = 2.0
    with tracer.span("cpu", "compute", 0):
        clock.now = 3.0
    clock.now = 10.0
    coll.__exit__(None, None, None)
    clock.now = 4.0
    with tracer.span("cpu", "unpack", 1, lane="io"):
        clock.now = 6.0
    return SimpleNamespace(tracer=tracer, transfers=[], label=None), sp


def test_self_time_and_stack_paths():
    prof, _ = scripted_profiler()
    stacks = collapsed_stacks(prof)
    # collective self time: 10 - (2 + 1) children = 7s
    assert stacks["rank 0;allgatherv"] == 7_000_000
    assert stacks["rank 0;allgatherv;pack"] == 2_000_000
    assert stacks["rank 0;allgatherv;compute"] == 1_000_000
    assert stacks["rank 1 [io];unpack"] == 2_000_000
    # weights cover the total busy time exactly (integer microseconds)
    assert sum(stacks.values()) == 12_000_000


def test_zero_self_time_dropped_and_open_spans_ignored():
    clock = SimpleNamespace(now=0.0)
    tracer = Tracer(clock)
    outer = tracer.span("collective", "bcast", 0)
    outer.__enter__()
    with tracer.span("cpu", "compute", 0):
        clock.now = 5.0
    outer.__exit__(None, None, None)     # self time exactly 0
    tracer.span("cpu", "pack", 2).__enter__()        # never closed
    prof = SimpleNamespace(tracer=tracer, transfers=[])
    stacks = collapsed_stacks(prof)
    assert stacks == {"rank 0;bcast;compute": 5_000_000}


def test_empty_profiler_and_empty_list():
    prof = SimpleNamespace(tracer=Tracer(SimpleNamespace(now=0.0)),
                           transfers=[])
    assert collapsed_stacks(prof) == {}
    assert collapsed_stacks([]) == {}
    assert render_collapsed({}) == ""


def test_multiple_profilers_merge():
    p1, _ = scripted_profiler()
    p2, _ = scripted_profiler()
    stacks = collapsed_stacks([p1, p2])
    assert stacks["rank 0;allgatherv;pack"] == 4_000_000   # both runs


def test_critical_stacks():
    crit = CriticalPath(10.0, 2, [
        Segment(0, 0.0, 4.0, "compute", "compute", "allgatherv"),
        Segment(0, 4.0, 7.0, "wire", "xfer 0->1", "allgatherv", msg_id=1),
        Segment(1, 7.0, 10.0, "pack", "unpack", "allgatherv"),
    ])
    stacks = critical_stacks(crit)
    assert stacks == {
        "rank 0;allgatherv;compute": 4_000_000,
        "rank 0;allgatherv;wire": 3_000_000,
        "rank 1;allgatherv;pack": 3_000_000,
    }
    assert sum(stacks.values()) == pytest.approx(crit.makespan * 1e6)


def test_render_and_write(tmp_path):
    prof, _ = scripted_profiler()
    path = tmp_path / "flame.txt"
    stacks = write_flamegraph(str(path), prof)
    text = path.read_text()
    assert text.endswith("\n")
    lines = text.strip().split("\n")
    assert len(lines) == len(stacks)
    # every line is "frames... weight" with an integer weight
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        assert stacks[stack] == int(weight)
    assert text == render_collapsed(stacks) + "\n"


def test_write_empty_flamegraph(tmp_path):
    prof = SimpleNamespace(tracer=Tracer(SimpleNamespace(now=0.0)),
                           transfers=[])
    path = tmp_path / "flame.txt"
    assert write_flamegraph(str(path), prof) == {}
    assert path.read_text() == ""
