"""Tests for array reductions: reduce, allreduce_array, scan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import Cluster, MPIConfig
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


@pytest.mark.parametrize("n,root", [(1, 0), (2, 0), (4, 3), (5, 0), (7, 2), (8, 0)])
def test_reduce_sum_to_root(n, root):
    cluster = make_cluster(n)

    def main(comm):
        send = np.full(8, float(comm.rank + 1))
        result = yield from comm.reduce(send, root=root)
        return None if result is None else result.copy()

    results = cluster.run(main)
    expect = np.full(8, float(n * (n + 1) // 2))
    assert np.array_equal(results[root], expect)
    assert all(results[r] is None for r in range(n) if r != root)


def test_reduce_with_recvbuf_and_custom_op():
    cluster = make_cluster(4)

    def main(comm):
        send = np.array([float(comm.rank), float(10 - comm.rank)])
        if comm.rank == 0:
            out = np.zeros(2)
            yield from comm.reduce(send, out, op=np.maximum, root=0)
            return out
        yield from comm.reduce(send, op=np.maximum, root=0)
        return None

    results = cluster.run(main)
    assert results[0].tolist() == [3.0, 10.0]


def test_reduce_invalid_root():
    cluster = make_cluster(2)

    def main(comm):
        yield from comm.reduce(np.zeros(2), root=7)

    with pytest.raises(Exception):
        cluster.run(main)


@pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 8, 11, 16])
def test_allreduce_array_sum(n):
    cluster = make_cluster(n)

    def main(comm):
        send = np.arange(5, dtype=np.float64) + comm.rank
        result = yield from comm.allreduce_array(send)
        return result

    results = cluster.run(main)
    expect = n * np.arange(5, dtype=np.float64) + n * (n - 1) / 2
    for r in results:
        assert np.array_equal(r, expect)


def test_allreduce_array_in_place_recvbuf():
    cluster = make_cluster(4)

    def main(comm):
        send = np.full(3, 1.0)
        out = np.zeros(3)
        yield from comm.allreduce_array(send, out)
        return out

    for r in make_cluster(4).run(main):
        assert np.all(r == 4.0)


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
def test_scan_inclusive_prefix(n):
    cluster = make_cluster(n)

    def main(comm):
        send = np.full(4, float(comm.rank + 1))
        result = yield from comm.scan(send)
        return result

    results = cluster.run(main)
    for rank, r in enumerate(results):
        expect = sum(range(1, rank + 2))
        assert np.all(r == float(expect)), (rank, r)


def test_scan_max():
    cluster = make_cluster(5)

    def main(comm):
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        send = np.array([values[comm.rank]])
        result = yield from comm.scan(send, op=np.maximum)
        return float(result[0])

    assert cluster.run(main) == [3.0, 3.0, 4.0, 4.0, 5.0]


def test_reduce_rejects_2d():
    cluster = make_cluster(2)

    def main(comm):
        yield from comm.reduce(np.zeros((2, 2)))

    with pytest.raises(Exception):
        cluster.run(main)


@given(st.integers(1, 8), st.integers(1, 16), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_property_allreduce_matches_numpy(n, length, seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(-100, 100, size=(n, length)).astype(np.float64)
    cluster = make_cluster(n)

    def main(comm):
        result = yield from comm.allreduce_array(data[comm.rank])
        return result

    results = cluster.run(main)
    expect = data.sum(axis=0)
    for r in results:
        assert np.allclose(r, expect)
