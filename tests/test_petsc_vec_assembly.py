"""Tests for VecSetValues-style global entry setting and extra norms."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import Layout, PETScError, Vec
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def test_set_values_local_insert_is_immediate():
    cluster = make_cluster(2)

    def main(comm):
        v = Vec(comm, Layout(comm.size, 8))
        start, _ = v.owned_range
        v.set_values([start], [42.0])
        yield from v.assemble()
        return v.local.copy()

    results = cluster.run(main)
    assert results[0][0] == 42.0
    assert results[1][0] == 42.0


def test_set_values_offrank_lands_after_assembly():
    cluster = make_cluster(4)

    def main(comm):
        v = Vec(comm, Layout(comm.size, 8))
        if comm.rank == 0:
            v.set_values(list(range(8)), [float(i * 10) for i in range(8)])
        yield from v.assemble()
        return v.local.copy()

    got = np.concatenate(cluster.run(main))
    assert got.tolist() == [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0]


def test_add_mode_accumulates_across_ranks():
    cluster = make_cluster(4)

    def main(comm):
        v = Vec(comm, Layout(comm.size, 4))
        # every rank adds 1 to every entry
        v.set_values(list(range(4)), [1.0] * 4, mode="add")
        yield from v.assemble()
        return v.local.copy()

    got = np.concatenate(cluster.run(main))
    assert np.all(got == 4.0)


def test_mixed_modes_rejected():
    cluster = make_cluster(2)

    def main(comm):
        v = Vec(comm, Layout(comm.size, 4))
        v.set_values([0], [1.0], mode="insert")
        with pytest.raises(PETScError):
            v.set_values([1], [1.0], mode="add")
        yield from comm.barrier()
        return True

    assert all(cluster.run(main))


def test_conflicting_modes_across_ranks_detected():
    cluster = make_cluster(2)

    def main(comm):
        v = Vec(comm, Layout(comm.size, 4))
        other = 1 - comm.rank
        target = v.layout.start(other)
        v.set_values([target], [1.0], mode="insert" if comm.rank == 0 else "add")
        yield from v.assemble()

    with pytest.raises(PETScError):
        cluster.run(main)


def test_length_mismatch_rejected():
    cluster = make_cluster(1)

    def main(comm):
        v = Vec(comm, Layout(1, 4))
        v.set_values([0, 1], [1.0])
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)


def test_assembly_without_stash_is_noop():
    cluster = make_cluster(3)

    def main(comm):
        v = Vec(comm, Layout(comm.size, 9))
        yield from v.set(5.0)
        yield from v.assemble()
        return float(v.local[0])

    assert cluster.run(main) == [5.0, 5.0, 5.0]


def test_norm_kinds():
    cluster = make_cluster(2)

    def main(comm):
        v = Vec(comm, Layout(comm.size, 4))
        start, end = v.owned_range
        vals = np.array([3.0, -4.0, 0.0, 2.0])
        v.local[:] = vals[start:end]
        n2 = yield from v.norm()
        n1 = yield from v.norm("1")
        ninf = yield from v.norm("inf")
        nmin = yield from v.min()
        return n2, n1, ninf, nmin

    for n2, n1, ninf, nmin in cluster.run(main):
        assert n2 == pytest.approx(np.sqrt(9 + 16 + 4))
        assert n1 == pytest.approx(9.0)
        assert ninf == pytest.approx(4.0)
        assert nmin == pytest.approx(-4.0)


def test_gather_to_all():
    cluster = make_cluster(3)

    def main(comm):
        v = Vec(comm, Layout(comm.size, 10, [6, 3, 1]))
        start, end = v.owned_range
        v.local[:] = np.arange(start, end, dtype=np.float64) * 2
        full = yield from v.gather_to_all()
        return full

    for full in cluster.run(main):
        assert np.array_equal(full, np.arange(10, dtype=np.float64) * 2)


def test_unknown_norm_rejected():
    cluster = make_cluster(1)

    def main(comm):
        v = Vec(comm, Layout(1, 2))
        yield from v.norm("7")

    with pytest.raises(PETScError):
        cluster.run(main)
