"""The datatype compiler: canonical IR, pass pipeline and lowering.

Three families of guarantees:

- **canonical form**: equivalent constructor trees compile to *identical*
  IR (the paper's observation that Vector/Indexed/IndexedBlock/HVector
  describing the same layout should not perform differently);
- **byte identity**: the compiled copy programs produce exactly the
  bytes of the legacy per-element gather path, for every constructor,
  with the optimization pipeline on or off (property-based, including
  zero counts, zero-length blocks, overlapping displacements and deep
  nesting);
- **structure**: plan sharing across equal instances, op-count shape of
  optimized vs deoptimized lowering, and the compile-cache counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import (
    BYTE,
    DOUBLE,
    INT,
    Contiguous,
    HIndexed,
    HVector,
    Indexed,
    IndexedBlock,
    Resized,
    Struct,
    Subarray,
    TypedBuffer,
    Vector,
    ir,
)

D = DOUBLE


# -- helpers ------------------------------------------------------------------

def roundtrip_identical(dt, count=1, offset_bytes=0):
    """pack/unpack/extract via the compiled program vs the legacy gather
    path, byte for byte, on a deterministic pattern buffer."""
    need = offset_bytes + (count * dt.extent if count else 0) + 64
    src = np.arange(need, dtype=np.uint8)
    tb = TypedBuffer(src.copy(), dt, count=count, offset_bytes=offset_bytes)
    legacy_tb = TypedBuffer(src.copy(), dt, count=count,
                            offset_bytes=offset_bytes)
    packed = tb.pack()
    packed_legacy = legacy_tb.pack_legacy()
    assert packed.tobytes() == packed_legacy.tobytes()
    assert tb.extract().tobytes() == packed.tobytes()

    # unpack a fresh pattern into two zeroed buffers: identical layouts
    wire = (np.arange(len(packed), dtype=np.uint8) + 7).astype(np.uint8)
    a = TypedBuffer(np.zeros(need, dtype=np.uint8), dt, count=count,
                    offset_bytes=offset_bytes)
    b = TypedBuffer(np.zeros(need, dtype=np.uint8), dt, count=count,
                    offset_bytes=offset_bytes)
    a.unpack(wire)
    b.unpack_legacy(wire)
    assert a._bytes.tobytes() == b._bytes.tobytes()


@pytest.fixture
def passes_disabled():
    ir.set_passes_enabled(False)
    ir.cache_clear()
    try:
        yield
    finally:
        ir.set_passes_enabled(True)
        ir.cache_clear()


# -- canonical form -----------------------------------------------------------

def test_equivalent_strided_specs_share_one_canonical_ir():
    specs = [
        Vector(4, 2, 4, D),
        Indexed([2, 2, 2, 2], [0, 4, 8, 12], D),
        IndexedBlock(2, [0, 4, 8, 12], D),
        HVector(4, 2, 32, D),
    ]
    irs = {ir.ir_of(s) for s in specs}
    assert irs == {ir.Loop(count=4, stride=32,
                           child=ir.Block(offset=0, length=16))}


def test_fully_contiguous_specs_normalize_to_a_single_block():
    specs = [
        Contiguous(2, Vector(2, 2, 2, D)),
        Indexed([8], [0], D),
        Contiguous(8, D),
    ]
    assert {ir.ir_of(s) for s in specs} == {ir.Block(offset=0, length=64)}


def test_abutting_struct_members_coalesce():
    s = Struct([2, 2], [0, 16], [D, D])
    assert ir.ir_of(s) == ir.Block(offset=0, length=32)


def test_vector_of_full_rows_is_contiguous():
    # blocklength == stride: no holes, a vector in name only
    assert ir.ir_of(Vector(5, 3, 3, D)) == ir.Block(offset=0, length=120)


def test_nested_loop_collapse():
    # Contiguous over a vector whose padded extent equals count*stride:
    # the outer replication step lines up and the loops fuse into one
    v = Resized(Vector(4, 1, 2, D), 64)
    c = Contiguous(3, v)
    assert ir.ir_of(c) == ir.Loop(count=12, stride=16,
                                  child=ir.Block(offset=0, length=8))


def test_scatter_rerolls_to_strided_loop():
    # uniform lengths + uniform stride: the Indexed fast path lands on
    # the same rolled loop a Vector would
    i = Indexed([1, 1, 1, 1, 1, 1], [0, 3, 6, 9, 12, 15], D)
    assert ir.ir_of(i) == ir.Loop(count=6, stride=24,
                                  child=ir.Block(offset=0, length=8))


def test_canonical_ir_means_shared_plan_and_shared_blocklist():
    a = Vector(8, 1, 8, D)
    b = IndexedBlock(1, list(range(0, 64, 8)), D)
    assert a.struct_key() != b.struct_key()  # different constructors...
    pa, pb = ir.compile_datatype(a), ir.compile_datatype(b)
    assert pa.ir == pb.ir  # ...same canonical IR
    assert np.array_equal(pa.blocks.offsets, pb.blocks.offsets)
    assert np.array_equal(pa.blocks.lengths, pb.blocks.lengths)


def test_flatten_is_memoized_across_equal_instances():
    a = Vector(8, 1, 8, D)
    b = Vector(8, 1, 8, D)
    assert a is not b
    assert a.flatten() is b.flatten()


# -- IR blocklist equals the legacy per-class flatten walks -------------------

LEGACY_EQUIV_SPECS = [
    D,
    BYTE,
    Contiguous(5, D),
    Contiguous(3, Contiguous(2, INT)),
    Vector(4, 2, 5, D),
    Vector(3, 2, 2, D),
    HVector(3, 1, 24, D),
    Indexed([2, 0, 3], [0, 5, 7], D),
    Indexed([1, 2], [3, 0], D),           # unsorted displacements
    IndexedBlock(2, [0, 6, 3], D),
    HIndexed([2, 1], [8, 40], D),
    Struct([1, 2], [0, 16], [INT, D]),
    Struct([2, 1], [4, 0], [BYTE, D]),
    Subarray([4, 5], [2, 3], [1, 1], D),
    Subarray([4, 5], [2, 3], [1, 1], D, order="F"),
    Resized(Vector(2, 1, 3, D), 64),
    Vector(2, 2, 3, Contiguous(2, D)),
    Indexed([2, 1], [0, 4], Vector(2, 1, 2, D)),  # noncontiguous base
]


@pytest.mark.parametrize("dt", LEGACY_EQUIV_SPECS,
                         ids=[type(s).__name__ + str(i)
                              for i, s in enumerate(LEGACY_EQUIV_SPECS)])
def test_ir_blocklist_matches_legacy_flatten(dt):
    legacy = dt._flatten()
    via_ir = ir.to_blocklist(ir.ir_of(dt))
    assert np.array_equal(via_ir.offsets, legacy.offsets)
    assert np.array_equal(via_ir.lengths, legacy.lengths)


@pytest.mark.parametrize("dt", LEGACY_EQUIV_SPECS,
                         ids=[type(s).__name__ + str(i)
                              for i, s in enumerate(LEGACY_EQUIV_SPECS)])
def test_roundtrip_every_constructor(dt):
    roundtrip_identical(dt)
    roundtrip_identical(dt, count=3)
    roundtrip_identical(dt, count=2, offset_bytes=8)


# -- edge cases ---------------------------------------------------------------

def test_zero_count_typed_buffer():
    tb = TypedBuffer(np.zeros(16, dtype=np.uint8), D, count=0)
    assert tb.nbytes == 0
    assert tb.pack().size == 0
    tb.unpack(np.empty(0, dtype=np.uint8))  # no-op, no error


def test_zero_length_indexed_blocks_drop_out():
    dt = Indexed([0, 2, 0, 1], [9, 0, 5, 4], D)
    assert dt.size == 3 * 8
    roundtrip_identical(dt, count=2)


def test_overlapping_displacements_unpack_last_wins():
    # MPI leaves overlapping unpack targets implementation-defined; we
    # pin sequential last-wins and require legacy/IR agreement
    dt = Indexed([2, 2], [0, 1], D)
    roundtrip_identical(dt, count=1)


def test_deep_nesting_roundtrip():
    dt = Vector(2, 1, 2, HVector(2, 1, 48, Contiguous(2, Vector(2, 1, 2, D))))
    roundtrip_identical(dt, count=2, offset_bytes=16)


# -- property-based byte identity ---------------------------------------------

@st.composite
def datatype_tree(draw, depth=0):
    kinds = ["primitive", "contiguous", "vector", "hvector",
             "indexed", "indexed_block", "struct", "resized"]
    kind = "primitive" if depth >= 2 else draw(st.sampled_from(kinds))
    if kind == "primitive":
        return draw(st.sampled_from([D, INT, BYTE]))
    base = draw(datatype_tree(depth=depth + 1))
    if kind == "contiguous":
        return Contiguous(draw(st.integers(1, 4)), base)
    if kind == "vector":
        blocklength = draw(st.integers(1, 3))
        stride = blocklength + draw(st.integers(0, 3))
        return Vector(draw(st.integers(1, 4)), blocklength, stride, base)
    if kind == "hvector":
        blocklength = draw(st.integers(1, 2))
        stride = blocklength * base.extent + 8 * draw(st.integers(0, 2))
        return HVector(draw(st.integers(1, 3)), blocklength, stride, base)
    if kind == "indexed":
        nblocks = draw(st.integers(1, 4))
        lens = [draw(st.integers(0, 3)) for _ in range(nblocks)]
        lens[draw(st.integers(0, nblocks - 1))] = draw(st.integers(1, 3))
        disps, pos = [], 0
        for length in lens:
            pos += draw(st.integers(0, 2))
            disps.append(pos)
            pos += length
        return Indexed(lens, disps, base)
    if kind == "indexed_block":
        blocklength = draw(st.integers(1, 3))
        nblocks = draw(st.integers(1, 3))
        disps, pos = [], 0
        for _ in range(nblocks):
            pos += draw(st.integers(0, 2))
            disps.append(pos)
            pos += blocklength
        return IndexedBlock(blocklength, disps, base)
    if kind == "struct":
        n = draw(st.integers(1, 3))
        lens = [draw(st.integers(1, 2)) for _ in range(n)]
        disps, pos = [], 0
        for length in lens:
            pos += draw(st.integers(0, 16))
            disps.append(pos)
            pos += length * base.extent
        return Struct(lens, disps, [base] * n)
    return Resized(base, base.extent + 8 * draw(st.integers(0, 2)))


@given(datatype_tree(), st.integers(0, 3), st.integers(0, 2))
@settings(max_examples=200, deadline=None)
def test_fuzz_ir_matches_legacy(dt, count, off8):
    roundtrip_identical(dt, count=count, offset_bytes=8 * off8)


@given(datatype_tree(), st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_fuzz_ir_matches_legacy_passes_disabled(dt, count):
    ir.set_passes_enabled(False)
    ir.cache_clear()
    try:
        roundtrip_identical(dt, count=count)
    finally:
        ir.set_passes_enabled(True)
        ir.cache_clear()


@given(datatype_tree())
@settings(max_examples=100, deadline=None)
def test_fuzz_canonical_ir_is_a_fixpoint(dt):
    # the pass pipeline must be idempotent: optimizing canonical IR
    # again changes nothing
    canonical = ir.ir_of(dt)
    assert ir.optimize(canonical) == canonical


# -- lowering structure -------------------------------------------------------

def test_optimized_lowering_uses_strided_ops():
    plan = ir.compile_datatype(Vector(8, 1, 8, D), 4)
    assert plan.program.num_ops == 4
    assert plan.program.op_kinds() == {"strided": 4}


def test_deoptimized_lowering_is_one_op_per_block(passes_disabled):
    plan = ir.compile_datatype(Vector(8, 1, 8, D), 4)
    assert plan.program.num_ops == 32
    assert set(plan.program.op_kinds()) == {"contig"}


def test_contiguous_lowers_to_single_copy():
    plan = ir.compile_datatype(Contiguous(64, D))
    assert plan.program.num_ops == 1
    assert plan.program.op_kinds() == {"contig": 1}
    # 64 raw element blocks coalesced into one: ratio = blocks/raw
    assert plan.coalesced_ratio == pytest.approx(1 / 64)


def test_huge_irregular_layout_falls_back_to_gather():
    # 3000 ragged runs blow the python-op budget: the lowering must
    # emit one vectorized gather, not thousands of interpreted ops
    rng = np.random.default_rng(0)
    disps = np.cumsum(rng.integers(2, 5, size=3000))
    lens = rng.integers(1, 2, size=3000)
    dt = Indexed(lens.tolist(), disps.tolist(), D)
    plan = ir.compile_datatype(dt)
    assert plan.program.op_kinds() == {"gather": 1}
    roundtrip_identical(dt)


def test_compile_cache_hits_across_instances():
    ir.cache_clear()
    before = ir.cache_stats()
    a = TypedBuffer(np.zeros(4096, dtype=np.uint8), Vector(7, 2, 9, D),
                    count=2)
    b = TypedBuffer(np.zeros(4096, dtype=np.uint8), Vector(7, 2, 9, D),
                    count=2)
    after = ir.cache_stats()
    assert after["misses"] >= before["misses"] + 1
    assert after["hits"] >= before["hits"] + 1
    assert a.plan is b.plan


def test_plan_info_feeds_layout_summary():
    tb = TypedBuffer(np.zeros(4096, dtype=np.uint8), Vector(8, 1, 8, D),
                     count=4)
    info = tb.layout_summary()
    assert info["ir_ops"] == 4
    assert info["ir_raw_blocks"] == 32
    assert 0.0 <= info["ir_coalesced_ratio"] <= 1.0
