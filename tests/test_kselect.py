"""Unit and property tests for Floyd-Rivest k_select."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import k_select


def test_small_examples():
    assert k_select([5, 1, 4, 2, 3], 1) == 1
    assert k_select([5, 1, 4, 2, 3], 3) == 3
    assert k_select([5, 1, 4, 2, 3], 5) == 5


def test_singleton():
    assert k_select([42], 1) == 42


def test_duplicates():
    data = [7, 7, 7, 1, 1, 9]
    for k in range(1, 7):
        assert k_select(data, k) == sorted(data)[k - 1]


def test_input_not_mutated():
    data = [3, 1, 2]
    k_select(data, 2)
    assert data == [3, 1, 2]


def test_empty_raises():
    with pytest.raises(ValueError):
        k_select([], 1)


@pytest.mark.parametrize("k", [0, 6, -1])
def test_k_out_of_range(k):
    with pytest.raises(ValueError):
        k_select([1, 2, 3, 4, 5], k)


def test_large_random_against_sorted():
    rng = random.Random(0)
    data = [rng.randrange(10**6) for _ in range(5000)]
    ref = sorted(data)
    for k in [1, 2, 100, 2500, 4999, 5000]:
        assert k_select(data, k) == ref[k - 1]


def test_adversarial_orders():
    n = 2000
    for data in ([*range(n)], [*range(n, 0, -1)], [0] * n):
        ref = sorted(data)
        for k in (1, n // 2, n):
            assert k_select(data, k) == ref[k - 1]


@given(st.lists(st.integers(-10**9, 10**9), min_size=1, max_size=300), st.data())
@settings(max_examples=200)
def test_matches_sorted_oracle(data, draw):
    k = draw.draw(st.integers(1, len(data)))
    assert k_select(data, k) == sorted(data)[k - 1]


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=100), st.data())
@settings(max_examples=100)
def test_floats_match_sorted_oracle(data, draw):
    k = draw.draw(st.integers(1, len(data)))
    assert k_select(data, k) == sorted(data)[k - 1]
