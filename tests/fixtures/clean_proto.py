"""Clean fixture: near-miss siblings of every MTC10x rule.

Parsed (never executed) by ``tests/test_analyze_protocol.py``.  Each
function is one edit away from its broken twin in the
``broken_proto_*.py`` fixtures, and the protocol verifier must stay
silent on all of them.
"""

import numpy as np

from repro.datatypes import DOUBLE, Vector

PING_TAG = 3


def ring_shift_sendrecv(comm):
    """MTC103 near-miss: the same ring shift as the deadlock fixture,
    expressed as the deadlock-free pairwise exchange."""
    outgoing = np.zeros(4, dtype=np.float64)
    incoming = np.zeros(4, dtype=np.float64)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    yield from comm.sendrecv(outgoing, right, incoming, left)
    return incoming


def ring_shift_parity_ordered(comm):
    """MTC103 near-miss: blocking ring shift, made safe by ordering the
    blocking calls on send-first/receive-first parity classes."""
    outgoing = np.zeros(4, dtype=np.float64)
    incoming = np.zeros(4, dtype=np.float64)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    if comm.rank % 2 == 0:
        yield from comm.send(outgoing, right)
        yield from comm.recv(incoming, source=left)
    else:
        yield from comm.recv(incoming, source=left)
        yield from comm.send(outgoing, right)
    return incoming


def tag_agreement(comm):
    """MTC101/MTC102 near-miss: both endpoints agree on PING_TAG."""
    payload = np.arange(8, dtype=np.float64)
    if comm.rank == 0:
        yield from comm.send(payload, 1, tag=PING_TAG)
    elif comm.rank == 1:
        inbox = np.zeros(8, dtype=np.float64)
        yield from comm.recv(inbox, source=0, tag=PING_TAG)


def exact_receive(comm):
    """MTC105 near-miss: the receive holds exactly the sent volume."""
    if comm.rank == 0:
        outgoing = np.zeros(16, dtype=np.float64)
        yield from comm.send(outgoing, 1)
    elif comm.rank == 1:
        incoming = np.zeros(16, dtype=np.float64)
        yield from comm.recv(incoming, source=0)


def sufficient_strided_buffer(comm):
    """MTC105 near-miss: the receive buffer spans the Vector's full
    200-byte extent, so the strided placement fits."""
    if comm.rank == 0:
        payload = np.zeros(4, dtype=np.float64)
        yield from comm.send(payload, 1, datatype=DOUBLE, count=4)
    elif comm.rank == 1:
        sparse = Vector(4, 1, 8, DOUBLE)
        spacious = np.zeros(25, dtype=np.float64)
        yield from comm.recv(spacious, source=0, datatype=sparse, count=1)


def agreed_root_bcast(comm):
    """MTC104 near-miss: both branches reach the same bcast root even
    though they compute it differently."""
    value = np.zeros(1, dtype=np.float64)
    root = 0
    if comm.rank == root:
        # analyze: ignore[SPMD101] -- both branches do call a collective
        yield from comm.bcast(value, root=root)
    else:
        # analyze: ignore[SPMD101]
        yield from comm.bcast(None, root=0)
    return value


def nonblocking_exchange(comm):
    """Request-based exchange: isend/irecv pairs completed by one
    waitall -- matched, signature-compatible, deadlock-free."""
    from repro.mpi.request import Request

    outgoing = np.zeros(4, dtype=np.float64)
    incoming = np.zeros(4, dtype=np.float64)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    rreq = comm.irecv(incoming, source=left)
    sreq = yield from comm.isend(outgoing, right)
    yield from Request.waitall([rreq, sreq])
    return incoming
