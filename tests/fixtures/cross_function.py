"""Fixture: cross-function request hand-off and rank-tainted helpers.

Parsed (never executed) by ``tests/test_analyze_interproc.py`` to pin
the interprocedural summaries.  The ``fixtures`` directory is excluded
from tree-wide analyzer runs.

Expected findings (whole module, interprocedural):

- REQ101 at ``caller_drops_handed_off_request`` -- the helper *returns*
  the pending request, so the wait obligation transfers to the caller,
  which never discharges it.
- SPMD101 at ``caller_of_rank_tainted_helper`` -- the helper's return
  value is rank-dependent, and the caller guards a collective with it.

Everything else is clean *only because* summaries propagate across
function boundaries: a per-function analysis would flag
``start_send``'s returned request and miss both real bugs.
"""


def start_send(comm, data):
    """Helper: creates and *returns* a pending request (clean here --
    the caller adopts the wait obligation)."""
    req = yield from comm.isend(data, 1)
    return req


def finish(req):
    """Helper: waits a request passed in by the caller."""
    yield from req.wait()


def finish_via_keyword(*, request):
    """Same, with the request arriving as a keyword argument."""
    yield from request.wait()


def caller_waits_handed_off_request(comm, data):
    """Clean: request created in the helper, waited here."""
    req = yield from start_send(comm, data)
    yield from req.wait()


def caller_delegates_wait(comm, data):
    """Clean: creation *and* completion both happen in helpers."""
    req = yield from start_send(comm, data)
    yield from finish(req)


def caller_delegates_wait_by_keyword(comm, data):
    """Clean: the waiting helper receives the request as a keyword."""
    req = yield from start_send(comm, data)
    yield from finish_via_keyword(request=req)


def caller_drops_handed_off_request(comm, data):
    """REQ101: the helper's pending request is adopted, then leaked."""
    req = yield from start_send(comm, data)
    return comm.rank


def rank_parity(comm):
    """Helper: returns a rank-dependent value (taints callers)."""
    return comm.rank % 2


def caller_of_rank_tainted_helper(comm):
    """SPMD101: only even ranks reach the barrier, via the helper."""
    if rank_parity(comm) == 0:
        yield from comm.barrier()
