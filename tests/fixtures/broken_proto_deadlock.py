"""Intentionally broken fixture: deterministic deadlock (MTC103).

Parsed (never executed) by ``tests/test_analyze_protocol.py``; see
``broken_req.py`` for why this directory is excluded from tree scans.

Expected: MTC103 -- every rank issues a blocking send around the ring
before posting its receive.  Under rendezvous semantics no send can
complete until its matching receive is posted, and no receive is ever
posted: the classic head-to-head send/send cycle, at every world size.
"""

import numpy as np


def ring_shift_send_first(comm):
    """Blocking send to the right neighbour, *then* receive from the
    left one -- a wait-for cycle covering every rank."""
    outgoing = np.zeros(4, dtype=np.float64)
    incoming = np.zeros(4, dtype=np.float64)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    yield from comm.send(outgoing, right)
    yield from comm.recv(incoming, source=left)
    return incoming
