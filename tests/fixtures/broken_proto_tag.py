"""Intentionally broken fixture: tag mismatch (MTC101 + MTC102).

Parsed (never executed) by ``tests/test_analyze_protocol.py``; see
``broken_req.py`` for why this directory is excluded from tree scans.

Expected: MTC101 (the tag-3 send matches no receive envelope) and
MTC102 (the tag-7 receive accepts no posted send) -- the two halves of
one disagreement about the message tag.
"""

import numpy as np

PING_TAG = 3
PONG_TAG = 7


def tag_disagreement(comm):
    """Rank 0 sends with PING_TAG but rank 1 listens on PONG_TAG."""
    payload = np.arange(8, dtype=np.float64)
    if comm.rank == 0:
        yield from comm.send(payload, 1, tag=PING_TAG)
    elif comm.rank == 1:
        inbox = np.zeros(8, dtype=np.float64)
        yield from comm.recv(inbox, source=0, tag=PONG_TAG)
