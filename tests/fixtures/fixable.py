"""Fixture: one of each shape ``python -m repro.analyze --fix`` repairs.

Parsed (never executed) by ``tests/test_analyze_fix.py``: the test runs
the fix loop over this source and asserts the rewritten module analyzes
clean and that a second fix pass changes nothing.  The ``fixtures``
directory is excluded from tree-wide analyzer runs, so the tree-wide
``--fix --check`` CI gate does not see these.

Shapes (one function each):

- LNT003: discarded blocking-communication generator,
- REQ103: assigned-but-undriven generator,
- REQ101 (a): request created under an ``if`` arm, waited nowhere,
- REQ101 (b): request waited on only one arm of an ``if``/``else``,
- REQ101 (c): request waited under an ``if`` with no ``else`` at all,
- LNT002: loop-invariant ``flatten()`` re-run every iteration,
- LNT007: suppression comment that matches nothing.
"""


def discards_generator(comm, data):
    """LNT003: the send silently never happens."""
    comm.send(data, 1)
    yield from comm.barrier()


def undriven_assignment(comm):
    """REQ103: ``g`` is never driven with ``yield from``."""
    g = comm.recv(0)
    yield from comm.barrier()


def wait_missing_entirely(comm, data, flag):
    """REQ101 (a): the request created under the ``if`` leaks."""
    if flag:
        req = yield from comm.isend(data, 1)
        data = None
    yield from comm.barrier()


def wait_on_one_arm(comm, data, flag):
    """REQ101 (b): the ``else`` arm skips the wait."""
    req = yield from comm.isend(data, 1)
    if flag:
        yield from req.wait()
    else:
        yield from comm.barrier()


def wait_without_else(comm, data, flag):
    """REQ101 (c): falling through the ``if`` skips the wait."""
    req = yield from comm.isend(data, 1)
    if flag:
        yield from req.wait()
    yield from comm.barrier()


def rescans_in_loop(chain, comm, peers):
    """LNT002: ``flatten()`` is loop-invariant but re-run per peer."""
    for peer in peers:
        packed = chain.flatten()
        yield from comm.send(packed, peer)


def stale_suppression(comm, data):
    """LNT007: nothing here ever triggered LNT003."""
    yield from comm.send(data, 1)  # analyze: ignore[LNT003]
