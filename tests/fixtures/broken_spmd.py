"""Intentionally broken fixture: SPMD rank-divergence bugs (SPMD1xx).

Parsed (never executed) by ``tests/test_analyze_dataflow.py``; see
``broken_req.py`` for why this directory is excluded from tree scans.

Expected: SPMD101 (collective under a rank-dependent branch with no
matching call on the other side), SPMD102 (rank-dependent early exit
ahead of a collective).
"""

import numpy as np


def collective_under_rank_branch(comm):
    """SPMD101: only rank 0 enters the barrier -- everyone else runs
    straight past it, so rank 0 hangs forever."""
    if comm.rank == 0:
        yield from comm.barrier()
    return comm.rank


def early_exit_before_collective(comm, data):
    """SPMD102: ranks with nothing to contribute return before the
    allreduce; the remaining ranks block in it forever."""
    if comm.rank % 2 == 1:
        return None
    total = yield from comm.allreduce(float(len(data)))
    return total
