"""Intentionally pathological fixture: communication plans (PLAN1xx).

Parsed (never executed) by ``tests/test_analyze_dataflow.py``; see
``broken_req.py`` for why this directory is excluded from tree scans.

The count vectors here are statically evaluable, so the PLAN pass
extracts a volume profile and predicts the algorithm each selection
policy would pick.  Expected: PLAN101 (sparse volume set), PLAN102
(heavy-outlier volume set), PLAN103 (low-density datatype).
"""

import numpy as np

from repro.datatypes.typemap import DOUBLE, Vector

SPARSE_COUNTS = [0, 0, 6, 0, 0, 0, 0, 0]
OUTLIER_COUNTS = [4, 4, 4, 4096, 4, 4, 4, 4]


def sparse_gather(comm, send):
    """PLAN101: 7 of 8 contributions are zero-byte synchronisation."""
    recv = np.zeros(6)
    yield from comm.gatherv(send, recv, SPARSE_COUNTS)
    return recv


def outlier_allgatherv(comm, send):
    """PLAN102: one contribution dwarfs the rest; a ring serialises on
    it (Eq. 1 of the paper)."""
    recv = np.zeros(4124)
    yield from comm.allgatherv(send, recv, OUTLIER_COUNTS)
    return recv


def low_density_send(comm, column, partner):
    """PLAN103: a strided single-element column -- packing is slower
    than the section 4.1 copy bound."""
    dtype = Vector(count=256, blocklength=1, stride=64, base=DOUBLE)
    req = yield from comm.isend(column, partner, datatype=dtype)
    yield from req.wait()
