"""Intentionally broken fixture: request-lifetime bugs (REQ1xx).

This module is *parsed* by ``tests/test_analyze_dataflow.py`` to pin the
analyzer's expected findings; it is never imported or executed.  The
``fixtures`` directory is excluded from tree-wide analyzer runs
(:func:`repro.analyze.lint.iter_python_files`), so these bugs do not
pollute ``python -m repro.analyze --dataflow tests``.

Expected: REQ101 (early return skips the wait), REQ102 (loop-carried
rebinding of a pending request), REQ103 (undriven blocking generator).
"""

import numpy as np


def leaks_on_one_path(comm, data):
    """REQ101: the early return skips the wait."""
    req = yield from comm.isend(data, 1)
    if comm.size > 2:
        return None
    yield from req.wait()
    return data


def rebinds_pending(comm, bufs):
    """REQ102: each loop iteration rebinds ``req`` while the previous
    iteration's receive is still pending; only the last one is waited."""
    req = None
    for peer, buf in enumerate(bufs):
        req = comm.irecv(buf, peer)
    yield from req.wait()


def drops_generator(comm):
    """REQ103: a blocking-communication generator that is never driven
    (the ``yield from`` is missing, so no rank ever reaches the barrier)."""
    pending = comm.barrier()
    result = yield from comm.allreduce(1.0)
    return result
