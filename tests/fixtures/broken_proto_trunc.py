"""Intentionally broken fixture: signature/truncation mismatch (MTC105).

Parsed (never executed) by ``tests/test_analyze_protocol.py``; see
``broken_req.py`` for why this directory is excluded from tree scans.

Expected: MTC105 three times --

- ``truncating_receive``: the send is longer than the receive both in
  bytes (truncation) and in signature (DOUBLE*16 is not a prefix of
  DOUBLE*8);
- ``short_receive_buffer``: the endpoints' signatures agree, but the
  receive buffer cannot hold one copy of its sparse Vector datatype
  (buffer-extent insufficiency).
"""

import numpy as np

from repro.datatypes import DOUBLE, Vector


def truncating_receive(comm):
    """Rank 0 sends 16 doubles into an 8-double receive."""
    if comm.rank == 0:
        big = np.zeros(16, dtype=np.float64)
        yield from comm.send(big, 1)
    elif comm.rank == 1:
        small = np.zeros(8, dtype=np.float64)
        yield from comm.recv(small, source=0)


def short_receive_buffer(comm):
    """The strided Vector reaches 200 bytes into a 64-byte buffer."""
    if comm.rank == 0:
        payload = np.zeros(4, dtype=np.float64)
        yield from comm.send(payload, 1, datatype=DOUBLE, count=4)
    elif comm.rank == 1:
        sparse = Vector(4, 1, 8, DOUBLE)
        undersized = np.zeros(8, dtype=np.float64)
        yield from comm.recv(undersized, source=0, datatype=sparse, count=1)
