"""Intentionally broken fixture: collective divergence (MTC104).

Parsed (never executed) by ``tests/test_analyze_protocol.py``; see
``broken_req.py`` for why this directory is excluded from tree scans.

Expected: MTC104 -- every rank reaches a ``bcast``, but they disagree
on the root argument (rank 0 nominates itself, everyone else nominates
rank 1), which strands both groups in different collective instances.
SPMD101 cannot see this: each branch *does* contain a collective.
"""

import numpy as np


def root_divergent_bcast(comm):
    """Ranks disagree about who broadcasts."""
    value = np.zeros(1, dtype=np.float64)
    if comm.rank == 0:
        # analyze: ignore[SPMD101] -- both branches do call a collective
        yield from comm.bcast(value, root=0)
    else:
        # analyze: ignore[SPMD101]
        yield from comm.bcast(None, root=1)
    return value
