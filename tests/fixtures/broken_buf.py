"""Intentionally broken fixture: buffer-aliasing bugs (BUF1xx).

Parsed (never executed) by ``tests/test_analyze_dataflow.py``; see
``broken_req.py`` for why this directory is excluded from tree scans.

Expected: BUF101 (send buffer overwritten while the isend is in
flight), BUF102 (receive buffer read before the irecv completes).
"""

import numpy as np


def overwrites_inflight_send(comm, partner):
    """BUF101: ``payload`` is mutated between isend and wait, so the
    rendezvous transfer may ship the *new* contents."""
    payload = np.arange(8, dtype=np.float64)
    req = yield from comm.isend(payload, partner)
    payload[:] = 0.0
    yield from req.wait()


def reads_unfilled_recv(comm, partner):
    """BUF102: the checksum is computed from ``inbox`` before the
    receive has landed."""
    inbox = np.zeros(8, dtype=np.float64)
    req = comm.irecv(inbox, partner)
    checksum = float(inbox.sum())
    yield from req.wait()
    return checksum
