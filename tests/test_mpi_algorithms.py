"""Tests for the collective-algorithm registry, selection policies, shared
argument validation and the tuning-table machinery
(:mod:`repro.mpi.algorithms`)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import DOUBLE, TypedBuffer, Vector
from repro.mpi import Cluster, MPIConfig, MPIError
from repro.mpi.algorithms import (
    REGISTRY,
    AdaptivePolicy,
    AutotunedPolicy,
    FixedPolicy,
    FlagPolicy,
    MpichPolicy,
    SelectionContext,
    TuningTable,
    bucket_key,
    check_spec_lengths,
    normalize_counts_displs,
    policy_for,
    select,
    size_bucket,
    total_bucket,
    volume_profile,
)
from repro.mpi.outlier import detection_cpu_seconds
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)
BASE = MPIConfig.baseline()
OPT = MPIConfig.optimized()


def ctx_for(config, counts, size=None, dtype_size=8, contiguous=True,
            collective="allgatherv"):
    return SelectionContext(
        collective=collective,
        size=size if size is not None else len(counts),
        volumes=tuple(c * dtype_size for c in counts),
        dtype_size=dtype_size,
        contiguous=contiguous,
        config=config,
        cost=QUIET,
    )


# -- registry -----------------------------------------------------------------

def test_registry_knows_every_collective():
    collectives = REGISTRY.collectives()
    for name in ("allgatherv", "alltoallw", "allreduce", "barrier", "bcast",
                 "gather_obj", "gatherv", "scatterv", "alltoall",
                 "reduce", "allreduce_array", "scan"):
        assert name in collectives, f"{name} missing from {collectives}"


def test_registry_allgatherv_candidates():
    assert REGISTRY.names("allgatherv") == [
        "dissemination", "recursive_doubling", "ring"]
    assert REGISTRY.names("alltoallw") == ["binned", "round_robin"]


def test_registry_unknown_name_raises():
    with pytest.raises(MPIError, match="registered"):
        REGISTRY.get("allgatherv", "quantum")
    with pytest.raises(MPIError):
        REGISTRY.get("no_such_collective", "ring")


def test_registry_duplicate_with_different_fn_rejected():
    def other(*a):  # pragma: no cover - never run
        yield

    with pytest.raises(ValueError, match="already registered"):
        REGISTRY.register_fn("allgatherv", "ring")(other)
    # re-registering the same fn is idempotent
    ring = REGISTRY.get("allgatherv", "ring")
    REGISTRY.register(ring)


def test_predicates_filter_candidates():
    # non-power-of-two excludes recursive doubling
    names = [a.name for a in
             REGISTRY.candidates("allgatherv", ctx_for(OPT, [1] * 6))]
    assert "recursive_doubling" not in names
    assert "dissemination" in names and "ring" in names
    # noncontiguous element types leave only the ring
    names = [a.name for a in REGISTRY.candidates(
        "allgatherv", ctx_for(OPT, [1] * 8, contiguous=False))]
    assert names == ["ring"]


def test_estimators_are_finite_and_ordered():
    # outlier workload: the closed-form prior already prefers the tree
    ctx = ctx_for(OPT, [4096] + [1] * 7)
    est = {a.name: a.estimate(ctx) for a in REGISTRY.candidates("allgatherv", ctx)}
    assert all(math.isfinite(v) and v > 0 for v in est.values())
    assert est["recursive_doubling"] < est["ring"]


def test_only_requires_single_candidate():
    assert REGISTRY.only("barrier").name == "dissemination"
    with pytest.raises(ValueError, match="candidates"):
        REGISTRY.only("allgatherv")


# -- shared counts/displs validation ------------------------------------------

def test_normalize_counts_displs_defaults():
    counts, displs = normalize_counts_displs(4, [3, 0, 2, 1])
    assert counts == [3, 0, 2, 1]
    assert displs == [0, 3, 3, 5]
    assert all(isinstance(x, int) for x in counts + displs)


def test_normalize_counts_displs_explicit_displs_kept():
    counts, displs = normalize_counts_displs(3, [1, 1, 1], [10, 20, 30])
    assert displs == [10, 20, 30]


def test_normalize_rejects_bad_lengths():
    with pytest.raises(MPIError, match="3 entries for 4 ranks"):
        normalize_counts_displs(4, [1, 2, 3])
    with pytest.raises(MPIError, match="displs has 2 entries"):
        normalize_counts_displs(3, [1, 1, 1], [0, 1])


def test_normalize_rejects_negative_counts():
    with pytest.raises(MPIError, match="negative count"):
        normalize_counts_displs(3, [1, -1, 1])


def test_check_spec_lengths():
    check_spec_lengths(2, [None, None], [None, None])
    with pytest.raises(MPIError, match="2 entries"):
        check_spec_lengths(2, [None], [None, None])


# -- policy resolution --------------------------------------------------------

def test_policy_for_derives_from_flags():
    assert isinstance(policy_for(BASE), MpichPolicy)
    assert isinstance(policy_for(OPT), AdaptivePolicy)
    mixed = BASE.with_(adaptive_allgatherv=True)
    pol = policy_for(mixed)
    assert isinstance(pol, FlagPolicy)
    assert pol.name == "flags"


def test_policy_for_explicit_spec():
    assert isinstance(policy_for(BASE.with_(selection_policy="adaptive")),
                      AdaptivePolicy)
    assert isinstance(policy_for(OPT.with_(selection_policy="mpich")),
                      MpichPolicy)
    assert isinstance(policy_for(OPT.with_(selection_policy="autotuned")),
                      AutotunedPolicy)
    fixed = policy_for(OPT.with_(selection_policy="fixed:ring"))
    assert isinstance(fixed, FixedPolicy)
    assert fixed.algorithm == "ring"
    with pytest.raises(ValueError, match="unknown selection_policy"):
        policy_for(OPT.with_(selection_policy="magic"))


def test_policy_instances_are_cached_per_config():
    assert policy_for(MPIConfig.baseline()) is policy_for(MPIConfig.baseline())


# -- decision parity with the pre-refactor dispatch ---------------------------

SMALL = [10] * 8                       # 640 B total: short regime
UNIFORM_LARGE = [4096] * 8             # 256 KiB total, uniform
OUTLIER_LARGE = [32768] + [1] * 7      # one 256 KiB outlier


@pytest.mark.parametrize("counts,mpich_pick,adaptive_pick", [
    (SMALL, "recursive_doubling", "recursive_doubling"),
    (UNIFORM_LARGE, "ring", "ring"),
    (OUTLIER_LARGE, "ring", "recursive_doubling"),
])
def test_allgatherv_decision_parity(counts, mpich_pick, adaptive_pick):
    """baseline()/optimized() decisions pinned to the pre-refactor logic."""
    assert MpichPolicy(BASE).decide(ctx_for(BASE, counts)).algorithm == mpich_pick
    assert AdaptivePolicy(OPT).decide(ctx_for(OPT, counts)).algorithm == adaptive_pick


def test_allgatherv_non_power_of_two_uses_dissemination():
    counts = [32768] + [1] * 4
    decision = AdaptivePolicy(OPT).decide(ctx_for(OPT, counts))
    assert decision.algorithm == "dissemination"


def test_noncontiguous_always_rides_the_ring():
    for policy in (MpichPolicy(BASE), AdaptivePolicy(OPT)):
        for counts in (SMALL, OUTLIER_LARGE):
            ctx = ctx_for(policy.config, counts, contiguous=False)
            assert policy.decide(ctx).algorithm == "ring"


def test_alltoallw_decision_parity():
    ctx_b = ctx_for(BASE, [100] * 8, collective="alltoallw")
    ctx_o = ctx_for(OPT, [100] * 8, collective="alltoallw")
    assert MpichPolicy(BASE).decide(ctx_b).algorithm == "round_robin"
    assert AdaptivePolicy(OPT).decide(ctx_o).algorithm == "binned"


def test_flag_policy_mixes_per_collective():
    cfg = BASE.with_(adaptive_allgatherv=True)  # binned_alltoallw stays off
    pol = policy_for(cfg)
    agv = pol.decide(ctx_for(cfg, OUTLIER_LARGE))
    a2a = pol.decide(ctx_for(cfg, [100] * 8, collective="alltoallw"))
    assert agv.algorithm == "recursive_doubling"   # adaptive side
    assert a2a.algorithm == "round_robin"          # mpich side


def test_adaptive_charges_detection_only_in_long_regime():
    pol = AdaptivePolicy(OPT)
    long_u = pol.decide(ctx_for(OPT, UNIFORM_LARGE))
    assert long_u.detect_seconds == pytest.approx(detection_cpu_seconds(8))
    short = pol.decide(ctx_for(OPT, SMALL))
    assert short.detect_seconds == 0.0
    assert MpichPolicy(BASE).decide(ctx_for(BASE, UNIFORM_LARGE)).detect_seconds == 0.0


def test_fixed_policy_pins_and_falls_back():
    pol = FixedPolicy(OPT, "ring")
    assert pol.decide(ctx_for(OPT, OUTLIER_LARGE)).algorithm == "ring"
    # alltoallw has no "ring"; fall back to the mpich rule, keep the name
    decision = pol.decide(ctx_for(OPT, [100] * 8, collective="alltoallw"))
    assert decision.algorithm == "round_robin"
    assert decision.policy == "fixed:ring"
    assert decision.reason.startswith("fixed:unregistered->")
    # inapplicable pins fall back too
    rd = FixedPolicy(OPT, "recursive_doubling")
    decision = rd.decide(ctx_for(OPT, [10] * 6))   # non-pow-2
    assert decision.algorithm != "recursive_doubling"
    assert decision.reason.startswith("fixed:inapplicable->")


def test_select_forced_algorithm_and_validation():
    class FakeComm:
        size = 8
        config = OPT
        cost = QUIET

    decision = select(FakeComm(), "allgatherv", ctx_for(OPT, SMALL),
                      algorithm="ring")
    assert decision.algorithm == "ring" and decision.policy == "forced"
    with pytest.raises(MPIError):
        select(FakeComm(), "allgatherv", ctx_for(OPT, SMALL),
               algorithm="quantum")


# -- tuning table -------------------------------------------------------------

def test_volume_profile_classes():
    assert volume_profile([]) == "zero"
    assert volume_profile([0, 0, 0]) == "zero"
    assert volume_profile([0, 0, 0, 5, 5, 0]) == "sparse"
    assert volume_profile([4096] + [1] * 7) == "outlier"
    assert volume_profile([100] * 8) == "uniform"


def test_size_and_total_buckets():
    assert size_bucket(1) == 1
    assert size_bucket(5) == 8
    assert size_bucket(64) == 64
    assert total_bucket(0) == 0
    assert total_bucket(1024) == 10
    assert total_bucket(1500) == 10


def test_bucket_key_format():
    key = bucket_key(ctx_for(OPT, [4096] + [1] * 7))
    assert key == "allgatherv|p8|b15|outlier"


def test_tuning_table_record_and_lookup():
    table = TuningTable()
    table.record("k", {"ring": 2e-6, "dissemination": 1e-6})
    assert table.lookup("k") == "dissemination"
    assert table.lookup("untrained") is None
    # accumulation across scenarios can flip the winner
    table.record("k", {"ring": 1e-6, "dissemination": 5e-6})
    assert table.entries["k"]["scenarios"] == 2
    assert table.lookup("k") == "ring"


def test_tuning_table_roundtrip(tmp_path):
    table = TuningTable(cost_model={"alpha": 1e-6})
    table.record("allgatherv|p8|b15|outlier", {"ring": 3e-6, "dissemination": 1e-6})
    path = str(tmp_path / "table.json")
    table.save(path)
    loaded = TuningTable.load(path)
    assert loaded.lookup("allgatherv|p8|b15|outlier") == "dissemination"
    assert loaded.cost_model["alpha"] == 1e-6
    with pytest.raises(ValueError, match="repro-tuning/1"):
        TuningTable.from_dict({"schema": "nope"})


def test_autotuned_policy_table_hit_cache_and_fallback():
    ctx = ctx_for(OPT, OUTLIER_LARGE)
    table = TuningTable()
    table.record(bucket_key(ctx), {"ring": 9e-6, "recursive_doubling": 1e-6})
    pol = AutotunedPolicy(OPT.with_(selection_policy="autotuned"), table=table)
    first = pol.decide(ctx)
    assert (first.algorithm, first.reason, first.cache) == \
        ("recursive_doubling", "table", "miss")
    second = pol.decide(ctx)
    assert second.cache == "hit"
    # table decisions never charge the detection pass
    assert first.detect_seconds == 0.0 and second.detect_seconds == 0.0
    # untrained bucket: adaptive fallback with honest detection cost
    other = ctx_for(OPT, [8192] * 16)
    decision = pol.decide(other)
    assert decision.policy == "autotuned"
    assert decision.reason.startswith("untrained->")
    assert decision.algorithm == "ring"  # uniform large -> adaptive says ring
    assert decision.detect_seconds == pytest.approx(detection_cpu_seconds(16))


def test_autotuned_cache_is_lru_bounded():
    pol = AutotunedPolicy(OPT.with_(selection_policy="autotuned"),
                          table=TuningTable())
    pol.CACHE_SIZE = 2
    for i in range(4):
        pol._remember(f"k{i}", "ring")
    assert len(pol._cache) == 2
    assert list(pol._cache) == ["k2", "k3"]


# -- end-to-end: selection inside real clusters -------------------------------

def run_allgatherv(n, counts, config, algorithm=None):
    cluster = Cluster(n, config=config, cost=QUIET, heterogeneous=False)
    total = int(np.sum(counts))

    def main(comm):
        send = np.full(counts[comm.rank], float(comm.rank + 1))
        recv = np.zeros(total)
        yield from comm.allgatherv(send, recv, list(counts))
        return recv

    def main_forced(comm):
        send = np.full(counts[comm.rank], float(comm.rank + 1))
        recv = np.zeros(total)
        yield from comm.allgatherv(send, recv, list(counts),
                                   algorithm=algorithm)
        return recv

    return cluster.run(main if algorithm is None else main_forced)


@given(st.integers(2, 9), st.data())
@settings(max_examples=25, deadline=None)
def test_property_every_applicable_allgatherv_algorithm_agrees(n, data):
    """Byte-identical receive buffers across every registered algorithm the
    registry deems applicable -- zero counts and non-pow-2 N included."""
    counts = data.draw(st.lists(st.integers(0, 32), min_size=n, max_size=n)
                       .filter(lambda c: sum(c) > 0))
    ctx = ctx_for(OPT, counts, size=n)
    names = [a.name for a in REGISTRY.candidates("allgatherv", ctx)]
    assert "ring" in names  # the ring is always applicable
    reference = None
    for algorithm in names:
        results = run_allgatherv(n, counts, OPT, algorithm)
        blob = np.concatenate(results).tobytes()
        if reference is None:
            reference = blob
        else:
            assert blob == reference, f"{algorithm} disagrees with {names[0]}"


def test_noncontiguous_element_type_runs_on_the_ring():
    """A strided (noncontiguous) element type must survive default selection
    even in the outlier regime where the adaptive rule wants a tree."""
    n = 4
    elem = Vector(2, 1, 2, DOUBLE)      # 2 doubles picked from a 3-double span
    assert not elem.is_contiguous()
    span = elem.extent // 8             # doubles spanned per element
    counts = [1030, 1, 1, 1]            # > 16 KiB total: long regime, outlier
    displs = np.concatenate(([0], np.cumsum(counts[:-1]))).astype(int).tolist()
    total = int(np.sum(counts))
    cluster = Cluster(n, config=OPT, cost=QUIET, heterogeneous=False)

    def main(comm):
        send = np.full(counts[comm.rank] * span, float(comm.rank + 1))
        recv = np.zeros(total * span)
        yield from comm.allgatherv(send, recv, counts, displs, datatype=elem)
        return recv

    for recv in cluster.run(main):
        for b in range(n):
            off = displs[b] * span
            for e in range(counts[b]):
                assert recv[off + e * span] == float(b + 1)
                assert recv[off + e * span + 2] == float(b + 1)
                assert recv[off + e * span + 1] == 0.0  # the gap stays clean


@given(st.integers(2, 6), st.data())
@settings(max_examples=20, deadline=None)
def test_property_alltoallw_algorithms_agree(n, data):
    """round_robin and binned produce byte-identical receive buffers on
    randomized per-peer volumes (zeros included)."""
    volumes = data.draw(st.lists(
        st.lists(st.integers(0, 20), min_size=n, max_size=n),
        min_size=n, max_size=n))
    for i in range(n):
        volumes[i][i] = 0  # keep self-exchange trivial
    cap = max(max(row) for row in volumes) + 1

    def run(algorithm):
        cluster = Cluster(n, config=OPT, cost=QUIET, heterogeneous=False)

        def main(comm):
            sendbuf = np.arange(n * cap, dtype=np.float64) + comm.rank * 1000
            recvbuf = np.zeros(n * cap)
            sendspecs, recvspecs = [], []
            for peer in range(n):
                c_out = volumes[comm.rank][peer]
                c_in = volumes[peer][comm.rank]
                sendspecs.append(
                    TypedBuffer(sendbuf, DOUBLE, c_out, offset_bytes=peer * cap * 8)
                    if c_out else None)
                recvspecs.append(
                    TypedBuffer(recvbuf, DOUBLE, c_in, offset_bytes=peer * cap * 8)
                    if c_in else None)
            yield from comm.alltoallw(sendspecs, recvspecs, algorithm=algorithm)
            return recvbuf

        return np.concatenate(cluster.run(main)).tobytes()

    assert run("round_robin") == run("binned")


def test_selection_metrics_emitted():
    from repro.prof import Profiler

    n = 4
    cluster = Cluster(n, config=OPT, cost=QUIET, heterogeneous=False)
    prof = Profiler.attach(cluster)
    counts = [16] * n

    def main(comm):
        recv = np.zeros(sum(counts))
        send = np.full(counts[comm.rank], 1.0)
        yield from comm.allgatherv(send, recv, counts)
        yield from comm.barrier()

    cluster.run(main)
    counter = prof.metrics.counter("repro_algorithm_selections_total")
    assert counter.value(labels={
        "collective": "allgatherv", "algorithm": "recursive_doubling",
        "policy": "adaptive"}) == n
    assert counter.value(labels={
        "collective": "barrier", "algorithm": "dissemination",
        "policy": "adaptive"}) == n


def test_tuning_cache_metrics_emitted(tmp_path):
    from repro.prof import Profiler

    n = 8
    counts = [4096] + [1] * (n - 1)
    ctx = ctx_for(OPT, counts, size=n)
    table = TuningTable()
    table.record(bucket_key(ctx), {"ring": 9e-6, "recursive_doubling": 1e-6})
    path = str(tmp_path / "t.json")
    table.save(path)
    config = OPT.with_(selection_policy="autotuned", tuning_table=path)
    cluster = Cluster(n, config=config, cost=QUIET, heterogeneous=False)
    prof = Profiler.attach(cluster)

    def main(comm):
        for _ in range(2):
            recv = np.zeros(sum(counts))
            send = np.full(counts[comm.rank], 1.0)
            # outlier counts are the point  # analyze: ignore[PLAN102]
            yield from comm.allgatherv(send, recv, counts)

    cluster.run(main)
    hits = prof.metrics.counter("repro_tuning_cache_hits_total").total
    misses = prof.metrics.counter("repro_tuning_cache_misses_total").total
    assert hits + misses == 2 * n
    assert hits >= n  # the second round is all cache hits
