"""Unit tests for resources and ports."""

import pytest

from repro.simtime import Delay, Engine, Port, Resource
from repro.simtime.engine import SimulationError


def test_resource_serialises_single_capacity():
    eng = Engine()
    res = Resource(eng, capacity=1)
    log = []

    def proc(name):
        yield from res.use(1.0)
        log.append((eng.now, name))

    eng.spawn(proc("a"))
    eng.spawn(proc("b"))
    eng.spawn(proc("c"))
    eng.run()
    assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_resource_capacity_two_runs_pairs():
    eng = Engine()
    res = Resource(eng, capacity=2)
    log = []

    def proc(name):
        yield from res.use(1.0)
        log.append((eng.now, name))

    for n in "abcd":
        eng.spawn(proc(n))
    eng.run()
    assert log == [(1.0, "a"), (1.0, "b"), (2.0, "c"), (2.0, "d")]


def test_resource_fifo_order():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def proc(name, start_delay):
        yield Delay(start_delay)
        yield from res.use(10.0)
        order.append(name)

    eng.spawn(proc("late", 2.0))
    eng.spawn(proc("early", 1.0))
    eng.spawn(proc("first", 0.0))
    eng.run()
    assert order == ["first", "early", "late"]


def test_release_idle_resource_is_error():
    eng = Engine()
    res = Resource(eng, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    eng = Engine()
    with pytest.raises(ValueError):
        Resource(eng, capacity=0)


def test_port_tracks_busy_time():
    eng = Engine()
    port = Port(eng, "p")

    def proc():
        yield from port.use(2.0)
        yield Delay(3.0)
        yield from port.use(1.0)

    eng.spawn(proc())
    eng.run()
    assert port.busy_time == pytest.approx(3.0)
    assert eng.now == pytest.approx(6.0)


def test_resource_released_on_exception_in_use():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def bad():
        with pytest.raises(SimulationError):
            yield from _use_then_raise(res)
        # resource must be free again
        yield from res.use(1.0)
        return "ok"

    def _use_then_raise(res):
        yield from res.acquire()
        try:
            raise SimulationError("fail inside")
        finally:
            res.release()

    p = eng.spawn(bad())
    eng.run()
    assert p.result == "ok"
