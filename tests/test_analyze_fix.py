"""Tests for the ``--fix`` auto-rewriter (repro.analyze.fix)."""

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analyze.dataflow.driver import analyze_source_set
from repro.analyze.fix import fix_paths, fix_sources

TESTS = Path(__file__).parent
REPO = TESTS.parent
FIXTURES = TESTS / "fixtures"


def fix_one(source):
    """Run the fix loop on one dedented module; returns (new text,
    changed?)."""
    src = textwrap.dedent(source)
    result = fix_sources({"m.py": src})
    return result.changed.get("m.py", src), bool(result)


def residual_rules(text):
    report, _ = analyze_source_set([("m.py", text)])
    return sorted(f.rule for f in report)


# -- the individual codemods --------------------------------------------------

def test_inserts_yield_from_on_discarded_generator():
    fixed, changed = fix_one("""
        def f(comm, data):
            comm.send(data, 1)
            yield from comm.barrier()
    """)
    assert changed
    assert "    yield from comm.send(data, 1)" in fixed
    assert residual_rules(fixed) == []


def test_inserts_yield_from_on_undriven_assignment():
    fixed, changed = fix_one("""
        def f(comm):
            g = comm.recv(0)
            yield from comm.barrier()
    """)
    assert changed
    assert "g = yield from comm.recv(0)" in fixed
    assert residual_rules(fixed) == []


def test_never_turns_a_plain_function_into_a_generator():
    src = textwrap.dedent("""
        def f(comm, data):
            comm.send(data, 1)
    """)
    result = fix_sources({"m.py": src})
    assert not result.changed  # inserting 'yield from' here would
    # change f's calling convention; that needs a human


def test_wait_added_to_creating_if_arm():
    fixed, changed = fix_one("""
        def f(comm, data, flag):
            if flag:
                req = yield from comm.isend(data, 1)
                data = None
            yield from comm.barrier()
    """)
    assert changed
    assert "        yield from req.wait()" in fixed
    assert residual_rules(fixed) == []


def test_wait_mirrored_onto_skipping_else_arm():
    fixed, changed = fix_one("""
        def f(comm, data, flag):
            req = yield from comm.isend(data, 1)
            if flag:
                yield from req.wait()
            else:
                yield from comm.barrier()
    """)
    assert changed
    assert fixed.count("yield from req.wait()") == 2
    assert residual_rules(fixed) == []


def test_wait_creates_missing_else_arm():
    fixed, changed = fix_one("""
        def f(comm, data, flag):
            req = yield from comm.isend(data, 1)
            if flag:
                yield from req.wait()
            yield from comm.barrier()
    """)
    assert changed
    assert "    else:\n        yield from req.wait()\n" in fixed
    assert residual_rules(fixed) == []


def test_request_created_in_loop_is_not_touched():
    # hoisting a wait out of a loop iteration changes semantics: leave it
    src = textwrap.dedent("""
        def f(comm, bufs, flag):
            for peer, buf in enumerate(bufs):
                if flag:
                    req = comm.irecv(buf, peer)
    """)
    result = fix_sources({"m.py": src})
    assert "m.py" not in result.changed or \
        "wait" not in result.changed["m.py"]


def test_hoists_loop_invariant_flatten():
    fixed, changed = fix_one("""
        def f(chain, comm, peers):
            for peer in peers:
                packed = chain.flatten()
                yield from comm.send(packed, peer)
    """)
    assert changed
    lines = fixed.splitlines()
    assert lines.index("    packed = chain.flatten()") \
        < lines.index("    for peer in peers:")
    assert residual_rules(fixed) == []


def test_does_not_hoist_loop_variant_call():
    # argument depends on the loop variable: LNT002 does not fire, and
    # even if it did the zero-arg gate keeps the rewriter away
    src = textwrap.dedent("""
        def f(chain, comm, peers):
            for peer in peers:
                packed = chain.slice(peer).flatten()
                yield from comm.send(packed, peer)
    """)
    result = fix_sources({"m.py": src})
    assert not result.changed


def test_removes_stale_suppression_comment():
    fixed, changed = fix_one("""
        def f(comm, data):
            yield from comm.send(data, 1)  # analyze: ignore[LNT003]
    """)
    assert changed
    assert "analyze: ignore" not in fixed
    assert residual_rules(fixed) == []


def test_keeps_live_codes_when_dropping_stale_one():
    fixed, changed = fix_one("""
        def f(comm):
            if comm.rank == 0:
                yield from comm.barrier()  # analyze: ignore[SPMD101,LNT003]
    """)
    assert changed
    assert "# analyze: ignore[SPMD101]" in fixed
    assert residual_rules(fixed) == []


def test_comment_only_suppression_line_is_deleted():
    fixed, changed = fix_one("""
        def f(comm, data):
            # analyze: ignore[REQ102]
            yield from comm.barrier()
    """)
    assert changed
    assert "REQ102" not in fixed
    assert residual_rules(fixed) == []


# -- the loop: convergence, idempotency, safety -------------------------------

def test_fixture_repairs_to_clean_and_is_idempotent():
    src = (FIXTURES / "fixable.py").read_text(encoding="utf-8")
    assert residual_rules(src)  # the fixture is dirty by construction
    result = fix_sources({"fixable.py": src})
    fixed = result.changed["fixable.py"]
    report, _ = analyze_source_set([("fixable.py", fixed)])
    assert sorted(f.rule for f in report) == []
    # second run over the fixed text is a byte-for-byte no-op
    assert not fix_sources({"fixable.py": fixed}).changed


def test_diff_output_names_the_file():
    src = textwrap.dedent("""
        def f(comm, data):
            comm.send(data, 1)
            yield from comm.barrier()
    """)
    result = fix_sources({"pkg/mod.py": src})
    diff = result.diff()
    assert diff.startswith("--- a/pkg/mod.py")
    assert "+++ b/pkg/mod.py" in diff
    assert "+    yield from comm.send(data, 1)" in diff


def test_fix_paths_check_does_not_write(tmp_path):
    target = tmp_path / "mod.py"
    original = textwrap.dedent("""
        def f(comm, data):
            comm.send(data, 1)
            yield from comm.barrier()
    """)
    target.write_text(original, encoding="utf-8")
    result = fix_paths([str(tmp_path)], write=False)
    assert result.changed
    assert target.read_text(encoding="utf-8") == original
    # and with write=True the file is rewritten to a clean module
    result = fix_paths([str(tmp_path)], write=True)
    rewritten = target.read_text(encoding="utf-8")
    assert "yield from comm.send" in rewritten
    assert residual_rules(rewritten) == []


def test_unfixable_findings_are_left_alone():
    # REQ102 (loop-carried rebind) has no codemod: text unchanged
    src = textwrap.dedent("""
        def f(comm, bufs):
            req = None
            for peer, buf in enumerate(bufs):
                req = comm.irecv(buf, peer)
            yield from req.wait()
    """)
    result = fix_sources({"m.py": src})
    assert not result.changed


def test_cli_fix_check_exits_nonzero_and_prints_diff(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(textwrap.dedent("""
        def f(comm, data):
            comm.send(data, 1)
            yield from comm.barrier()
    """), encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analyze", "--dataflow",
         "--fix", "--check", str(tmp_path)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "+    yield from comm.send(data, 1)" in proc.stdout
    # the file was not modified
    assert "yield from comm.send" not in target.read_text(encoding="utf-8")


def test_cli_fix_check_clean_tree_exits_zero(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(textwrap.dedent("""
        def f(comm, data):
            yield from comm.send(data, 1)
    """), encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analyze", "--dataflow",
         "--fix", "--check", str(tmp_path)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "nothing to rewrite" in proc.stdout


def test_repo_tree_is_fix_clean():
    """The CI gate: ``--fix --check`` over src/examples/tests finds
    nothing to rewrite (fixtures are excluded by iter_python_files)."""
    result = fix_paths([str(REPO / "src"), str(REPO / "examples"),
                        str(REPO / "tests")], write=False)
    assert not result.changed, result.diff()
