"""Tests for VecScatter: both backends, correctness and cost behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import Cluster, MPIConfig
from repro.petsc import GeneralIS, Layout, PETScError, StrideIS, Vec, VecScatter
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def run_scatter(n, src_idx, dst_idx, backend, config=None, global_size=None):
    """dst[dst_idx[k]] = src[src_idx[k]] with src[i] = i globally."""
    config = config or MPIConfig.optimized()
    gsize = global_size or (max(max(src_idx), max(dst_idx)) + 1)
    cluster = Cluster(n, config=config, cost=QUIET, heterogeneous=False)

    def main(comm):
        lay = Layout(comm.size, gsize)
        src = Vec(comm, lay)
        dst = Vec(comm, lay)
        start, end = src.owned_range
        src.local[:] = np.arange(start, end, dtype=np.float64)
        dst.local[:] = -1.0
        sc = VecScatter.from_index_sets(
            comm, lay, GeneralIS(src_idx), lay, GeneralIS(dst_idx)
        )
        yield from sc.scatter(src, dst, backend=backend)
        return dst.local.copy()

    results = cluster.run(main)
    return np.concatenate(results), cluster.elapsed


def oracle(src_idx, dst_idx, gsize):
    out = np.full(gsize, -1.0)
    for s, d in zip(src_idx, dst_idx):
        out[d] = float(s)
    return out


@pytest.mark.parametrize("backend", ["hand_tuned", "datatype"])
@pytest.mark.parametrize("n", [1, 2, 4])
def test_identity_scatter(backend, n):
    gsize = 16
    idx = list(range(gsize))
    got, _ = run_scatter(n, idx, idx, backend, global_size=gsize)
    assert np.array_equal(got, np.arange(gsize, dtype=np.float64))


@pytest.mark.parametrize("backend", ["hand_tuned", "datatype"])
def test_reversal_scatter(backend):
    gsize = 12
    src = list(range(gsize))
    dst = list(reversed(src))
    got, _ = run_scatter(3, src, dst, backend, global_size=gsize)
    assert np.array_equal(got, oracle(src, dst, gsize))


@pytest.mark.parametrize("backend", ["hand_tuned", "datatype"])
def test_partial_scatter_leaves_gaps(backend):
    gsize = 20
    src = [0, 5, 10, 15]
    dst = [19, 18, 17, 16]
    got, _ = run_scatter(4, src, dst, backend, global_size=gsize)
    assert np.array_equal(got, oracle(src, dst, gsize))


@pytest.mark.parametrize("backend", ["hand_tuned", "datatype"])
def test_stride_to_stride(backend):
    """Even entries of the first half -> contiguous second half."""
    gsize = 32
    src_is = StrideIS(8, first=0, step=2)
    dst_is = StrideIS(8, first=16, step=1)
    cluster = Cluster(4, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)

    def main(comm):
        lay = Layout(comm.size, gsize)
        src = Vec(comm, lay)
        dst = Vec(comm, lay)
        start, end = src.owned_range
        src.local[:] = np.arange(start, end, dtype=np.float64)
        sc = VecScatter.from_index_sets(comm, lay, src_is, lay, dst_is)
        yield from sc.scatter(src, dst, backend=backend)
        return dst.local.copy()

    got = np.concatenate(cluster.run(main))
    assert np.array_equal(got[16:24], np.arange(0, 16, 2, dtype=np.float64))


def test_backends_agree_on_random_pattern():
    rng = np.random.default_rng(42)
    gsize = 64
    k = 40
    src = rng.integers(0, gsize, k).tolist()
    dst = rng.permutation(gsize)[:k].tolist()
    a, _ = run_scatter(4, src, dst, "hand_tuned", global_size=gsize)
    b, _ = run_scatter(4, src, dst, "datatype", global_size=gsize)
    assert np.array_equal(a, b)
    assert np.array_equal(a, oracle(src, dst, gsize))


def test_duplicate_destination_rejected():
    cluster = Cluster(2, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)

    def main(comm):
        lay = Layout(comm.size, 8)
        VecScatter.from_index_sets(
            comm, lay, GeneralIS([0, 1]), lay, GeneralIS([3, 3])
        )
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)


def test_length_mismatch_rejected():
    cluster = Cluster(2, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)

    def main(comm):
        lay = Layout(comm.size, 8)
        VecScatter.from_index_sets(
            comm, lay, GeneralIS([0, 1, 2]), lay, GeneralIS([3, 4])
        )
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)


def test_out_of_range_index_rejected():
    cluster = Cluster(2, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)

    def main(comm):
        lay = Layout(comm.size, 8)
        VecScatter.from_index_sets(
            comm, lay, GeneralIS([9]), lay, GeneralIS([0])
        )
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)


def test_unknown_backend_rejected():
    cluster = Cluster(2, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)

    def main(comm):
        lay = Layout(comm.size, 8)
        v = Vec(comm, lay)
        sc = VecScatter.from_index_sets(
            comm, lay, GeneralIS([0]), lay, GeneralIS([1])
        )
        yield from sc.scatter(v, v, backend="warp-drive")

    with pytest.raises(PETScError):
        cluster.run(main)


def test_reversed_scatter_round_trips():
    gsize = 16
    src = [0, 3, 6, 9, 12, 15]
    dst = [1, 2, 4, 8, 10, 14]
    cluster = Cluster(4, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)

    def main(comm):
        lay = Layout(comm.size, gsize)
        a = Vec(comm, lay)
        b = Vec(comm, lay)
        c = Vec(comm, lay)
        start, end = a.owned_range
        a.local[:] = np.arange(start, end, dtype=np.float64)
        c.local[:] = -1.0
        sc = VecScatter.from_index_sets(
            comm, lay, GeneralIS(src), lay, GeneralIS(dst)
        )
        yield from sc.scatter(a, b, backend="datatype")
        yield from sc.reversed().scatter(b, c, backend="datatype")
        return c.local.copy()

    got = np.concatenate(cluster.run(main))
    for s in src:
        assert got[s] == float(s)


def test_datatype_backend_message_counts_follow_config():
    """Baseline datatype path messages everyone; optimised only partners."""
    gsize = 64
    src = list(range(8))           # all owned by rank 0 (of 8)
    dst = [56 + i for i in range(8)]  # all owned by rank 7

    def msgs(config):
        cluster = Cluster(8, config=config, cost=QUIET, heterogeneous=False)

        def main(comm):
            lay = Layout(comm.size, gsize)
            a = Vec(comm, lay)
            b = Vec(comm, lay)
            sc = VecScatter.from_index_sets(
                comm, lay, GeneralIS(src), lay, GeneralIS(dst)
            )
            yield from sc.scatter(a, b, backend="datatype")

        cluster.run(main)
        return cluster.net.messages_on_wire

    assert msgs(MPIConfig.baseline()) == 8 * 7  # zero-byte to everyone
    assert msgs(MPIConfig.optimized()) == 1     # one real message


@given(st.integers(1, 6), st.data())
@settings(max_examples=30, deadline=None)
def test_property_matches_serial_oracle(n, data):
    gsize = data.draw(st.integers(n, 40))
    k = data.draw(st.integers(0, gsize))
    perm = data.draw(st.permutations(range(gsize)))
    dst = list(perm[:k])
    src = [data.draw(st.integers(0, gsize - 1)) for _ in range(k)]
    if k == 0:
        return
    for backend in ("hand_tuned", "datatype"):
        got, _ = run_scatter(n, src, dst, backend, global_size=gsize)
        assert np.array_equal(got, oracle(src, dst, gsize))
