"""Tests for the perf-trajectory baseline gate (``repro.bench.baseline``)."""

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.baseline import (
    append_trajectory,
    compare_to_baseline,
    trajectory_entry,
)


def bench_doc(rows=None, quick=True):
    return {
        "schema": "repro-bench/1",
        "quick": quick,
        "figures": {
            "Fig14a": {
                "title": "Nonuniform allgatherv",
                "columns": ["doubles", "MVAPICH2-0.9.5", "MVAPICH2-New",
                            "improvement %"],
                "rows": rows if rows is not None else [
                    [1024, 10.0, 5.0, 50.0],
                    [4096, 40.0, 16.0, 60.0],
                ],
                "notes": [],
            }
        },
    }


# -- compare_to_baseline -----------------------------------------------------

def test_identical_rerun_passes_exactly():
    doc = bench_doc()
    assert compare_to_baseline(doc, bench_doc()) == []
    # even with zero tolerance: the simulator is deterministic
    assert compare_to_baseline(doc, bench_doc(), rel_tol=0.0) == []


def test_slowdown_beyond_tolerance_fails():
    current = bench_doc(rows=[[1024, 10.0, 5.0, 50.0],
                              [4096, 40.0, 20.0, 50.0]])     # 16 -> 20
    problems = compare_to_baseline(current, bench_doc(), rel_tol=0.10)
    assert len(problems) == 1
    assert "Fig14a[4096] MVAPICH2-New" in problems[0]
    assert "+25.0%" in problems[0]
    # a looser tolerance lets it through
    assert compare_to_baseline(current, bench_doc(), rel_tol=0.30) == []


def test_speedup_and_derived_columns_never_fail():
    # faster everywhere, and the derived "% column" collapsing to 0 --
    # neither is a regression
    current = bench_doc(rows=[[1024, 5.0, 2.0, 0.0],
                              [4096, 20.0, 8.0, 0.0]])
    assert compare_to_baseline(current, bench_doc(), rel_tol=0.0) == []


def test_row_key_column_is_never_compared():
    # first column is the row key even when numeric (message sizes)
    base = bench_doc(rows=[[1024, 10.0, 5.0, 50.0]])
    cur = bench_doc(rows=[[1024, 10.0, 5.0, 50.0]])
    assert compare_to_baseline(cur, base) == []


def test_missing_figure_row_and_column_reported():
    base = bench_doc()
    empty = {"schema": "repro-bench/1", "quick": True, "figures": {}}
    assert compare_to_baseline(empty, base) == ["Fig14a: missing from current run"]

    one_row = bench_doc(rows=[[1024, 10.0, 5.0, 50.0]])
    problems = compare_to_baseline(one_row, base)
    assert problems == ["Fig14a[4096]: row missing from current run"]

    renamed = bench_doc()
    renamed["figures"]["Fig14a"]["columns"][2] = "MVAPICH2-Renamed"
    problems = compare_to_baseline(renamed, base)
    assert len(problems) == 2           # one per row
    assert all("column 'MVAPICH2-New' missing" in p for p in problems)


def test_quick_mode_mismatch_is_not_comparable():
    problems = compare_to_baseline(bench_doc(quick=False), bench_doc())
    assert len(problems) == 1
    assert "quick-mode mismatch" in problems[0]


def test_extra_current_figures_are_fine():
    cur = bench_doc()
    cur["figures"]["Fig99"] = {"columns": ["n", "t"], "rows": [[1, 9e9]]}
    assert compare_to_baseline(cur, bench_doc()) == []


def test_non_numeric_cells_skipped():
    base = bench_doc(rows=[[1024, "n/a", 5.0, 50.0]])
    cur = bench_doc(rows=[[1024, "n/a", 5.0, 50.0]])
    assert compare_to_baseline(cur, base) == []


# -- append_trajectory -------------------------------------------------------

def test_trajectory_appends_and_creates(tmp_path):
    path = tmp_path / "BENCH_trajectory.json"
    assert append_trajectory(str(path), bench_doc(), label="abc123") == 1
    assert append_trajectory(str(path), bench_doc(), label="def456") == 2
    history = json.loads(path.read_text())
    assert [e["label"] for e in history] == ["abc123", "def456"]
    assert history[0]["quick"] is True
    assert history[0]["figures"]["Fig14a"]["rows"][0][0] == 1024
    # entries carry no bulky profile payload
    assert set(history[0]) == {"label", "quick", "figures"}
    assert history[0] == trajectory_entry(bench_doc(), label="abc123")


def test_trajectory_appends_to_seeded_empty_list(tmp_path):
    path = tmp_path / "traj.json"
    path.write_text("[]\n")
    assert append_trajectory(str(path), bench_doc()) == 1


def test_trajectory_rejects_non_list(tmp_path):
    path = tmp_path / "traj.json"
    path.write_text("{}")
    with pytest.raises(ValueError):
        append_trajectory(str(path), bench_doc())


# -- the CLI gate end-to-end (fig12 --quick runs in about a second) ----------

@pytest.fixture(scope="module")
def fig12_artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("baseline") / "bench.json"
    assert main(["fig12", "--quick", "--emit-json", str(path)]) == 0
    return str(path)


def test_cli_baseline_passes_on_identical_rerun(fig12_artifact, capsys):
    assert main(["fig12", "--quick", "--baseline", fig12_artifact]) == 0
    assert "no perf regression" in capsys.readouterr().out


def test_cli_baseline_fails_on_degraded_run(fig12_artifact, capsys):
    assert main(["fig12", "--quick", "--baseline", fig12_artifact,
                 "--degrade", "4.0"]) == 1
    out = capsys.readouterr().out
    assert "PERF REGRESSION" in out
    assert "tolerance" in out
    # the default fault plan must not leak into later clusters
    from repro.faults import get_default_plan

    assert get_default_plan() is None


def test_cli_baseline_rejects_wrong_schema(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "something-else/1"}')
    assert main(["fig12", "--quick", "--baseline", str(bad)]) == 2


def test_cli_critpath_and_flame_require_profile(capsys):
    assert main(["fig12", "--critpath-out", "c.json"]) == 2
    assert main(["fig12", "--flame-out", "f.txt"]) == 2


def test_cli_critpath_flame_trajectory_outputs(tmp_path, capsys):
    crit = tmp_path / "crit.json"
    flame = tmp_path / "flame.txt"
    traj = tmp_path / "traj.json"
    assert main(["fig12", "--quick", "--profile",
                 "--critpath-out", str(crit), "--flame-out", str(flame),
                 "--trajectory", str(traj),
                 "--trajectory-label", "deadbeef"]) == 0
    doc = json.loads(crit.read_text())
    assert doc["schema"] == "repro-critpath/1"
    assert doc["runs"]
    for run in doc["runs"]:
        assert run["path_total"] == pytest.approx(run["makespan"], rel=1e-9)
    assert flame.read_text().strip()          # non-empty collapsed stacks
    history = json.loads(traj.read_text())
    assert history[-1]["label"] == "deadbeef"
