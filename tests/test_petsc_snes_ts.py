"""Tests for the SNES (Newton-Krylov) and TS (time stepping) layers."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import DMDA, Laplacian, Layout, PETScError, Vec
from repro.petsc.snes import NewtonKrylov
from repro.petsc.ts import backward_euler, explicit_euler, rk4
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


# -- SNES ----------------------------------------------------------------------

def test_newton_scalar_like_system():
    """F(x) = x^2 - a elementwise: Newton converges quadratically."""
    cluster = make_cluster(2)

    def main(comm):
        lay = Layout(comm.size, 8)
        x = Vec(comm, lay)
        yield from x.set(3.0)
        a = 4.0

        def residual(w, f):
            f.local[:] = w.local**2 - a
            yield from f._flops(2.0)

        result = yield from NewtonKrylov(residual, x, rtol=1e-12)
        return result, x.local.copy()

    results = cluster.run(main)
    result, xs = results[0]
    assert result.converged
    assert result.iterations <= 8
    assert np.allclose(xs, 2.0)


def test_newton_linear_problem_one_iteration():
    """On a linear F, Newton needs a single (exactly-solved) step."""
    cluster = make_cluster(2)

    def main(comm):
        lay = Layout(comm.size, 6)
        x = Vec(comm, lay)

        def residual(w, f):
            f.local[:] = 3.0 * w.local - 6.0
            yield from f._flops(2.0)

        result = yield from NewtonKrylov(
            residual, x, rtol=1e-10, linear_rtol=1e-12
        )
        return result, x.local.copy()

    result, xs = cluster.run(main)[0]
    assert result.converged
    assert result.iterations <= 2
    assert np.allclose(xs, 2.0)


def test_newton_bratu_2d():
    """The Bratu problem -lap(u) = mu * exp(u) with Dirichlet boundaries --
    PETSc's classic SNES example -- on a distributed grid."""
    cluster = make_cluster(4)
    mu = 2.0

    def main(comm):
        da = DMDA(comm, (16, 16))
        op = Laplacian(da)
        work = da.create_global_vec()

        def residual(w, f):
            # F(u) = A u - mu exp(u)   (A = -lap with Dirichlet)
            yield from op.mult(w, f)
            np.subtract(f.local, mu * np.exp(w.local), out=f.local)
            yield from f._flops(3.0)

        x = da.create_global_vec()
        result = yield from NewtonKrylov(residual, x, rtol=1e-10, maxits=30)
        return result, x.local.copy()

    results = cluster.run(main)
    result = results[0][0]
    assert result.converged, result.residual_norms
    u = np.concatenate([r[1] for r in results])
    assert u.min() > 0.0          # Bratu's lower solution branch is positive
    assert u.max() < 2.0
    # residual dropped by many orders
    assert result.residual_norms[-1] < 1e-8 * result.residual_norms[0] + 1e-11


def test_newton_reports_failure_on_unsolvable():
    """F(x) = x^2 + 1 has no real root; the line search must give up."""
    cluster = make_cluster(1)

    def main(comm):
        lay = Layout(1, 4)
        x = Vec(comm, lay)

        def residual(w, f):
            f.local[:] = w.local**2 + 1.0
            yield from f._flops(2.0)

        result = yield from NewtonKrylov(residual, x, rtol=1e-10, maxits=20)
        return result

    result = cluster.run(main)[0]
    assert not result.converged


# -- TS ------------------------------------------------------------------------

def exp_decay_rhs_factory():
    def rhs(u, g):
        g.local[:] = -u.local
        yield from g._flops()
    return rhs


@pytest.mark.parametrize(
    "method,order",
    [(explicit_euler, 1), (rk4, 4)],
)
def test_explicit_methods_convergence_order(method, order):
    """Integrate u' = -u over [0, 1]; halving dt divides the error by
    ~2^order."""
    cluster = make_cluster(2)

    def run(steps):
        def main(comm):
            lay = Layout(comm.size, 4)
            u = Vec(comm, lay)
            yield from u.set(1.0)
            yield from method(exp_decay_rhs_factory(), u, 1.0 / steps, steps)
            return u.local.copy()

        return np.concatenate(make_cluster(2).run(main))

    err1 = np.abs(run(20) - np.exp(-1.0)).max()
    err2 = np.abs(run(40) - np.exp(-1.0)).max()
    rate = np.log2(err1 / err2)
    assert order - 0.5 < rate < order + 0.7, (err1, err2, rate)


def test_backward_euler_stable_on_stiff_problem():
    """u' = -1000 u with dt far beyond the explicit stability limit."""
    cluster = make_cluster(2)

    def main(comm):
        lay = Layout(comm.size, 4)
        u = Vec(comm, lay)
        yield from u.set(1.0)

        def rhs(w, g):
            g.local[:] = -1000.0 * w.local
            yield from g._flops()

        yield from backward_euler(rhs, u, dt=0.1, steps=5)
        return u.local.copy()

    u = np.concatenate(cluster.run(main))
    assert np.all(u > 0.0)          # no oscillation
    assert np.all(u < 1e-5)         # strong decay


def test_heat_equation_decays_with_rk4():
    """Ghosted heat equation on a DMDA: energy decays monotonically."""
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (16, 16))
        op = Laplacian(da)
        u = da.create_global_vec()
        lo, hi = da.owned_box()
        ys = (np.arange(lo[1], hi[1]) + 0.5) / 16
        xs = (np.arange(lo[2], hi[2]) + 0.5) / 16
        u.local[:] = np.outer(np.sin(np.pi * ys), np.sin(np.pi * xs)).reshape(-1)

        def rhs(w, g):
            yield from op.mult(w, g)   # A = -lap, so u' = -A u
            yield from g.scale(-1.0)

        norms = []

        def monitor(step, t, state):
            norms.append(float(np.linalg.norm(state.local)))

        # dt below the explicit stability limit dt < h^2/(4) with A ~ 4/h^2
        yield from rk4(rhs, u, dt=5e-4, steps=20, monitor=monitor)
        return norms

    norms = cluster.run(main)[0]
    assert all(b < a for a, b in zip(norms, norms[1:]))


def test_ts_parameter_validation():
    cluster = make_cluster(1)

    def main(comm):
        lay = Layout(1, 2)
        u = Vec(comm, lay)
        yield from explicit_euler(exp_decay_rhs_factory(), u, -0.1, 3)

    with pytest.raises(PETScError):
        cluster.run(main)
