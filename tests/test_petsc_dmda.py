"""Tests for the DMDA distributed structured grid."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import DMDA, PETScError
from repro.petsc.dmda import dims_create
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


# -- dims_create ---------------------------------------------------------------

@pytest.mark.parametrize(
    "nranks,ndim,expect",
    [
        (1, 3, [1, 1, 1]),
        (8, 3, [2, 2, 2]),
        (128, 3, [4, 4, 8]),
        (12, 2, [3, 4]),
        (7, 2, [1, 7]),
        (16, 1, [16]),
        (60, 3, [3, 4, 5]),
    ],
)
def test_dims_create(nranks, ndim, expect):
    got = dims_create(nranks, ndim)
    assert got == expect
    assert int(np.prod(got)) == nranks


def test_dims_create_validation():
    with pytest.raises(PETScError):
        dims_create(0, 3)
    with pytest.raises(PETScError):
        dims_create(4, 4)


# -- geometry ----------------------------------------------------------------

def test_boxes_partition_the_grid():
    cluster = make_cluster(6)

    def main(comm):
        da = DMDA(comm, (8, 9), stencil_width=1)
        yield from comm.barrier()
        return da.owned_box(), da.local_shape

    results = cluster.run(main)
    # every cell owned exactly once
    seen = np.zeros((8, 9), dtype=int)
    for (lo, hi), _shape in results:
        seen[lo[1]:hi[1], lo[2]:hi[2]] += 1
    assert np.all(seen == 1)


def test_global_vec_size_matches_grid():
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (10, 12), dof=3)
        v = da.create_global_vec()
        yield from comm.barrier()
        return v.global_size

    assert cluster.run(main) == [10 * 12 * 3] * 4


def test_natural_to_global_roundtrip():
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (6, 8))
        v = da.create_global_vec()
        # stamp every owned cell with its natural id via the local view
        lo, hi = da.owned_box()
        arr = da.global_array(v)
        for j in range(lo[1], hi[1]):
            for i in range(lo[2], hi[2]):
                arr[0, j - lo[1], i - lo[2]] = j * 100 + i
        yield from comm.barrier()
        return v.local.copy()

    results = cluster.run(main)
    flat = np.concatenate(results)
    # check natural_to_global against the stamps (computable on any rank)
    cluster2 = make_cluster(4)

    def main2(comm):
        da = DMDA(comm, (6, 8))
        jj, ii = np.meshgrid(np.arange(8), np.arange(6), indexing="xy")
        gidx = da.natural_to_global(np.zeros_like(ii.ravel()), ii.ravel(), jj.ravel())
        yield from comm.barrier()
        return gidx

    gidx = cluster2.run(main2)[0]
    ii, jj = np.meshgrid(np.arange(6), np.arange(8), indexing="ij")
    expect = ii.ravel() * 100 + jj.ravel()
    assert np.array_equal(flat[gidx], expect.astype(np.float64))


def test_stencil_width_too_large_rejected():
    cluster = make_cluster(4)

    def main(comm):
        DMDA(comm, (4, 4), stencil_width=3)
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)


def test_proc_grid_mismatch_rejected():
    cluster = make_cluster(4)

    def main(comm):
        DMDA(comm, (8, 8), proc_grid=(3, 2))
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)


# -- ghost exchange ----------------------------------------------------------------

def ghost_exchange_matches_numpy(nranks, dims, stencil, width, backend, dof=1):
    """Fill a global vec with natural ids, exchange ghosts, compare every
    rank's ghosted array against a numpy-slicing oracle."""
    cluster = make_cluster(nranks)

    def main(comm):
        da = DMDA(comm, dims, dof=dof, stencil=stencil, stencil_width=width)
        v = da.create_global_vec()
        lo, hi = da.owned_box()
        shape3 = tuple(hi[d] - lo[d] for d in range(3))
        z, y, x = np.meshgrid(
            np.arange(lo[0], hi[0]), np.arange(lo[1], hi[1]),
            np.arange(lo[2], hi[2]), indexing="ij",
        )
        natural = (z * 10000 + y * 100 + x).astype(np.float64)
        if dof > 1:
            stamped = natural[..., None] * 10 + np.arange(dof)
            v.local[:] = stamped.reshape(-1)
        else:
            v.local[:] = natural.reshape(-1)
        larr = da.create_local_array()
        yield from da.global_to_local(v, larr, backend=backend)
        return da.ghosted_box(), larr

    results = cluster.run(main)
    owned = {}
    cluster_boxes = make_cluster(nranks)

    def boxes_main(comm):
        da = DMDA(comm, dims, dof=dof, stencil=stencil, stencil_width=width)
        yield from comm.barrier()
        return da.owned_box()

    owned_boxes = cluster_boxes.run(boxes_main)
    del owned
    # oracle: the full natural grid, zero-padded by the stencil width
    # (ghosted boxes extend past the physical boundary; those cells stay 0)
    dims3 = [1] * (3 - len(dims)) + list(dims)
    z, y, x = np.meshgrid(*[np.arange(s) for s in dims3], indexing="ij")
    full = (z * 10000 + y * 100 + x).astype(np.float64)
    if dof > 1:
        full = full[..., None] * 10 + np.arange(dof)
    pad = [(width, width) if s > 1 else (0, 0) for s in dims3]
    if dof > 1:
        pad.append((0, 0))
    full = np.pad(full, pad)
    off = [p[0] for p in pad[:3]]
    for rank, ((glo, ghi), larr) in enumerate(results):
        expect = full[
            glo[0] + off[0]:ghi[0] + off[0],
            glo[1] + off[1]:ghi[1] + off[1],
            glo[2] + off[2]:ghi[2] + off[2],
        ]
        got = larr.reshape(expect.shape)
        if stencil == "box":
            assert np.array_equal(got, expect)
            continue
        # star: only cells outside the owned range in at most ONE dimension
        # are exchanged; corner/edge ghosts legitimately stay zero
        lo, hi = owned_boxes[rank]
        coords = np.meshgrid(
            *[np.arange(glo[d], ghi[d]) for d in range(3)], indexing="ij"
        )
        outside = sum(
            ((coords[d] < lo[d]) | (coords[d] >= hi[d])).astype(int)
            for d in range(3)
        )
        mask = outside <= 1
        if dof > 1:
            mask = np.broadcast_to(mask[..., None], expect.shape)
        assert np.array_equal(got[mask], expect[mask])
        assert np.all(got[~mask] == 0.0)


@pytest.mark.parametrize("backend", ["hand_tuned", "datatype"])
def test_ghost_exchange_1d(backend):
    ghost_exchange_matches_numpy(4, (32,), "star", 1, backend)


@pytest.mark.parametrize("backend", ["hand_tuned", "datatype"])
@pytest.mark.parametrize("stencil", ["star", "box"])
def test_ghost_exchange_2d(backend, stencil):
    ghost_exchange_matches_numpy(6, (12, 10), stencil, 1, backend)


@pytest.mark.parametrize("backend", ["hand_tuned", "datatype"])
@pytest.mark.parametrize("stencil", ["star", "box"])
def test_ghost_exchange_3d(backend, stencil):
    ghost_exchange_matches_numpy(8, (8, 6, 10), stencil, 1, backend)


@pytest.mark.parametrize("stencil", ["star", "box"])
def test_ghost_exchange_width_2(stencil):
    ghost_exchange_matches_numpy(4, (12, 12), stencil, 2, "datatype")


def test_ghost_exchange_with_dof():
    ghost_exchange_matches_numpy(4, (8, 8), "star", 1, "datatype", dof=3)


def test_star_stencil_with_box_needed_leaves_corners_stale():
    """A star exchange must NOT fill corner ghosts (they stay zero)."""
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (8, 8), stencil="star", stencil_width=1, proc_grid=(2, 2))
        v = da.create_global_vec()
        v.local[:] = 1.0
        larr = da.create_local_array()
        yield from da.global_to_local(v, larr)
        return comm.rank, larr

    for rank, larr in cluster.run(main):
        arr = larr.reshape(larr.shape[-2], larr.shape[-1])
        # the corner pointing to the diagonal neighbour must be untouched
        if rank == 0:  # owns top-left block; diagonal corner is bottom-right
            assert arr[-1, -1] == 0.0
            assert arr[-1, -2] == 1.0  # face ghost filled
            assert arr[-2, -1] == 1.0


def test_box_stencil_fills_corners():
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (8, 8), stencil="box", stencil_width=1, proc_grid=(2, 2))
        v = da.create_global_vec()
        v.local[:] = 1.0
        larr = da.create_local_array()
        yield from da.global_to_local(v, larr)
        return comm.rank, larr

    for rank, larr in cluster.run(main):
        arr = larr.reshape(larr.shape[-2], larr.shape[-1])
        if rank == 0:
            assert arr[-1, -1] == 1.0


def test_box_stencil_volume_nonuniformity():
    """Box-stencil corner messages are much smaller than face messages --
    the nonuniform-volume pattern of Fig. 3."""
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (16, 16), stencil="box", stencil_width=1, proc_grid=(2, 2))
        sc = da.ghost_scatter()
        yield from comm.barrier()
        return {p: v.size for p, v in sc.send_map.items()}

    sizes = cluster.run(main)[0]
    assert len(sizes) == 3  # two faces + one corner
    assert sorted(sizes.values()) == [1, 8, 8]


def test_local_to_global_roundtrip():
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (8, 8))
        v = da.create_global_vec()
        v.local[:] = np.arange(v.local_size, dtype=np.float64) + comm.rank * 1000
        larr = da.create_local_array()
        yield from da.global_to_local(v, larr)
        w = da.create_global_vec()
        yield from da.local_to_global(larr, w)
        return np.array_equal(v.local, w.local)

    assert all(cluster.run(main))


def test_ghost_exchange_backends_agree():
    for backend in ("hand_tuned", "datatype"):
        ghost_exchange_matches_numpy(6, (9, 7, 11), "box", 1, backend)


def test_serial_dmda_no_neighbours():
    cluster = make_cluster(1)

    def main(comm):
        da = DMDA(comm, (5, 5), stencil="box", stencil_width=1)
        v = da.create_global_vec()
        v.local[:] = 7.0
        larr = da.create_local_array()
        yield from da.global_to_local(v, larr)
        return larr

    larr = cluster.run(main)[0]
    # the boundary pad exists but stays zero (Dirichlet ring)
    assert larr.shape == (1, 7, 7)
    assert np.all(larr[0, 1:-1, 1:-1] == 7.0)
    assert larr[0, 0, :].sum() == 0 and larr[0, :, 0].sum() == 0
    assert larr[0, -1, :].sum() == 0 and larr[0, :, -1].sum() == 0
