"""Unit tests for the span tracer (``repro.prof.spans``)."""

import pytest

from repro.prof.spans import SPAN_CATEGORIES, Span, Tracer


class FakeEngine:
    """A clock the test advances by hand."""

    def __init__(self):
        self.now = 0.0

    def advance(self, dt):
        self.now += dt


@pytest.fixture()
def clock():
    return FakeEngine()


@pytest.fixture()
def tracer(clock):
    return Tracer(clock)


def test_span_records_simulated_interval(tracer, clock):
    clock.advance(1.0)
    with tracer.span("collective", "allgatherv", 0, nbytes=64) as sp:
        clock.advance(2.5)
    assert sp.t_start == 1.0
    assert sp.t_end == 3.5
    assert sp.duration == 2.5
    assert not sp.open
    assert sp.attrs == {"nbytes": 64}
    assert len(tracer) == 1


def test_late_bound_attrs(tracer, clock):
    with tracer.span("collective", "allgatherv", 0) as sp:
        sp.attrs["algorithm"] = "ring"
    assert tracer.spans[0].attrs["algorithm"] == "ring"


def test_nesting_same_track(tracer, clock):
    with tracer.span("collective", "outer", 3) as outer:
        clock.advance(1.0)
        with tracer.span("phase", "inner", 3) as inner:
            clock.advance(1.0)
    assert outer.parent is None
    assert outer.depth == 0
    assert inner.parent == outer.id
    assert inner.depth == 1
    assert outer.encloses(inner)
    assert not inner.encloses(outer)
    assert tracer.children_of(outer) == [inner]


def test_lanes_are_independent_tracks(tracer, clock):
    with tracer.span("p2p", "isend", 0):
        with tracer.span("cpu", "unpack", 0, lane="io") as io_span:
            clock.advance(1.0)
    # the io lane does not nest under the main lane
    assert io_span.parent is None
    assert io_span.depth == 0
    assert tracer.tracks() == [(0, "io"), (0, "main")]


def test_close_by_identity_interleaved(tracer, clock):
    """Background processes on one track may close out of stack order."""
    a_ctx = tracer.span("cpu", "a", 0)
    b_ctx = tracer.span("cpu", "b", 0)
    a = a_ctx.__enter__()
    b = b_ctx.__enter__()
    clock.advance(1.0)
    a_ctx.__exit__(None, None, None)   # close the OUTER span first
    clock.advance(1.0)
    b_ctx.__exit__(None, None, None)
    assert a.t_end == 1.0
    assert b.t_end == 2.0
    assert b.parent == a.id            # parentage fixed at open time
    assert tracer.open_spans() == []


def test_open_spans_listed_until_closed(tracer, clock):
    ctx = tracer.span("wait", "request_wait", 1)
    sp = ctx.__enter__()
    assert tracer.open_spans() == [sp]
    assert sp.duration == 0.0          # open spans report zero duration
    ctx.__exit__(None, None, None)
    assert tracer.open_spans() == []


def test_instant_marks_current_time_and_parent(tracer, clock):
    clock.advance(2.0)
    with tracer.span("collective", "bcast", 0) as sp:
        mark = tracer.instant("marker", "enter:bcast", 0, seq=7)
    assert mark.t_start == mark.t_end == 2.0
    assert mark.parent == sp.id
    assert mark.attrs == {"seq": 7}
    # instants are kept apart from spans
    assert mark not in tracer.spans
    assert tracer.instants == [mark]


def test_queries(tracer, clock):
    with tracer.span("collective", "allgatherv", 0):
        with tracer.span("phase", "ring_hop", 0):
            pass
        with tracer.span("phase", "ring_hop", 0):
            pass
    with tracer.span("collective", "barrier", 1):
        pass
    assert [s.name for s in tracer.by_category("phase")] == ["ring_hop"] * 2
    assert len(tracer.by_name("ring_hop")) == 2
    assert len(tracer.by_category("collective")) == 2
    # recording order is open order
    assert [s.name for s in tracer.walk()] == [
        "allgatherv", "ring_hop", "ring_hop", "barrier",
    ]
    assert tracer.tracks() == [(0, "main"), (1, "main")]


def test_span_ids_unique(tracer):
    for _ in range(5):
        with tracer.span("cpu", "pack", 0):
            pass
    ids = [s.id for s in tracer.spans]
    assert len(set(ids)) == 5


def test_encloses_requires_closed_spans():
    a = Span(0, None, "cpu", "a", 0, (0, "main"), 0.0, t_end=None)
    b = Span(1, None, "cpu", "b", 0, (0, "main"), 0.0, t_end=1.0)
    assert not a.encloses(b)
    assert not b.encloses(a)


def test_category_catalogue_is_stable():
    """The documented span categories instrumented code relies on."""
    assert SPAN_CATEGORIES == (
        "p2p", "cpu", "collective", "phase", "petsc", "solver", "wait",
        "marker",
    )
