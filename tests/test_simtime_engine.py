"""Unit tests for the discrete-event engine."""

import pytest

from repro.simtime import (
    Delay,
    Engine,
    SimulationDeadlock,
    SimulationError,
)


def test_delay_advances_clock():
    eng = Engine()
    log = []

    def proc():
        yield Delay(1.5)
        log.append(eng.now)
        yield Delay(0.5)
        log.append(eng.now)

    eng.spawn(proc())
    eng.run()
    assert log == [1.5, 2.0]
    assert eng.now == 2.0


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1.0)


def test_zero_delay_allowed():
    eng = Engine()

    def proc():
        yield Delay(0.0)
        return "done"

    p = eng.spawn(proc())
    eng.run()
    assert p.result == "done"
    assert eng.now == 0.0


def test_processes_interleave_deterministically():
    eng = Engine()
    log = []

    def proc(name, dt):
        for i in range(3):
            yield Delay(dt)
            log.append((eng.now, name, i))

    eng.spawn(proc("a", 1.0))
    eng.spawn(proc("b", 1.0))
    eng.run()
    # equal timestamps fire in spawn order
    assert log == [
        (1.0, "a", 0), (1.0, "b", 0),
        (2.0, "a", 1), (2.0, "b", 1),
        (3.0, "a", 2), (3.0, "b", 2),
    ]


def test_future_wakes_waiter_with_value():
    eng = Engine()
    fut = eng.future("f")
    got = []

    def waiter():
        value = yield fut
        got.append((eng.now, value))

    def setter():
        yield Delay(2.0)
        fut.set_result(42)

    eng.spawn(waiter())
    eng.spawn(setter())
    eng.run()
    assert got == [(2.0, 42)]


def test_future_multiple_waiters():
    eng = Engine()
    fut = eng.future()
    got = []

    def waiter(i):
        value = yield fut
        got.append((i, value))

    for i in range(3):
        eng.spawn(waiter(i))

    def setter():
        yield Delay(1.0)
        fut.set_result("x")

    eng.spawn(setter())
    eng.run()
    assert got == [(0, "x"), (1, "x"), (2, "x")]


def test_future_double_resolve_is_error():
    eng = Engine()
    fut = eng.future()
    fut.set_result(1)
    with pytest.raises(SimulationError):
        fut.set_result(2)


def test_future_exception_propagates_into_waiter():
    eng = Engine()
    fut = eng.future()

    def waiter():
        with pytest.raises(KeyError):
            yield fut
        return "handled"

    def setter():
        yield Delay(1.0)
        fut.set_exception(KeyError("boom"))

    p = eng.spawn(waiter())
    eng.spawn(setter())
    eng.run()
    assert p.result == "handled"


def test_join_subprocess_returns_value():
    eng = Engine()

    def child():
        yield Delay(3.0)
        return 99

    def parent():
        value = yield eng.spawn(child())
        return (eng.now, value)

    p = eng.spawn(parent())
    eng.run()
    assert p.result == (3.0, 99)


def test_yield_from_subroutine():
    eng = Engine()

    def sub():
        yield Delay(1.0)
        return "sub-result"

    def proc():
        v = yield from sub()
        return v

    p = eng.spawn(proc())
    eng.run()
    assert p.result == "sub-result"


def test_deadlock_detection():
    eng = Engine()

    def stuck():
        yield eng.future("never")

    eng.spawn(stuck())
    with pytest.raises(SimulationDeadlock):
        eng.run()


def test_bad_yield_raises_in_process():
    eng = Engine()

    def proc():
        with pytest.raises(SimulationError):
            yield "not a command"
        return "ok"

    p = eng.spawn(proc())
    eng.run()
    assert p.result == "ok"


def test_unhandled_process_exception_propagates_from_run():
    eng = Engine()

    def proc():
        yield Delay(1.0)
        raise RuntimeError("unhandled")

    eng.spawn(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        eng.run()


def test_run_until_pauses_clock():
    eng = Engine()

    def proc():
        yield Delay(10.0)

    eng.spawn(proc())
    t = eng.run(until=4.0)
    assert t == 4.0
    assert eng.now == 4.0
    eng.run()
    assert eng.now == 10.0


def test_run_all_collects_results():
    eng = Engine()

    def proc(i):
        yield Delay(float(i))
        return i * i

    results = eng.run_all([proc(i) for i in range(5)])
    assert results == [0, 1, 4, 9, 16]


def test_spawn_rejects_non_generator():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.spawn(lambda: None)


def test_timeout_future():
    eng = Engine()

    def proc():
        yield eng.timeout(2.5)
        return eng.now

    p = eng.spawn(proc())
    eng.run()
    assert p.result == 2.5
