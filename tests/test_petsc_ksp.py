"""Tests for the Laplacian operator and Krylov solvers."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import CG, DMDA, Laplacian, PETScError, Richardson
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def manufactured(da):
    """(b, u_exact arrays for the owned box) for -lap u = f with
    u = sin(pi x) sin(pi y) sin(pi z), cell-centred on the unit cube."""
    lo, hi = da.owned_box()
    axes = []
    active = 0
    for d in range(3):
        n = da.dims[d]
        if n > 1:
            active += 1
            centers = (np.arange(lo[d], hi[d]) + 0.5) / n
            axes.append(np.sin(np.pi * centers))
        else:
            axes.append(np.ones(hi[d] - lo[d]))
    u = axes[0][:, None, None] * axes[1][None, :, None] * axes[2][None, None, :]
    f = (active * np.pi**2) * u
    return f.reshape(-1), u.reshape(-1)


@pytest.mark.parametrize("nranks", [1, 4])
def test_laplacian_mult_matches_dense_operator(nranks):
    """Compare the ghosted stencil apply against an explicit dense matrix."""
    m = 6
    cluster = make_cluster(nranks)

    def main(comm):
        da = DMDA(comm, (m, m))
        x = da.create_global_vec()
        y = da.create_global_vec()
        rng = np.random.default_rng(comm.rank)
        x.local[:] = rng.random(x.local_size)
        op = Laplacian(da)
        yield from op.mult(x, y)
        # gather for comparison
        xs = yield from comm.gather_obj(x.local.copy())
        ys = yield from comm.gather_obj(y.local.copy())
        if comm.rank == 0:
            # map PETSc ordering -> natural ordering
            jj, ii = np.meshgrid(np.arange(m), np.arange(m), indexing="xy")
            g = da.natural_to_global(
                np.zeros(m * m, dtype=int), ii.T.ravel(), jj.T.ravel()
            )
            return np.concatenate(xs), np.concatenate(ys), g
        return None

    out = cluster.run(main)[0]
    xg, yg, g = out
    # dense 2-D negative Laplacian with Dirichlet, natural (row-major) order
    n2 = m * m
    A = np.zeros((n2, n2))
    h2 = float(m * m)
    for i in range(m):
        for j in range(m):
            k = i * m + j
            A[k, k] = 4 * h2
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ni, nj = i + di, j + dj
                if 0 <= ni < m and 0 <= nj < m:
                    A[k, ni * m + nj] = -h2
                else:
                    # reflective Dirichlet ghost: u_ghost = -u_k
                    A[k, k] += h2
    x_nat = xg[g]
    expect = A @ x_nat
    got = yg[g]
    assert np.allclose(got, expect)


def test_laplacian_requires_single_dof_and_ghosts():
    cluster = make_cluster(1)

    def main(comm):
        da = DMDA(comm, (4, 4), dof=2)
        Laplacian(da)
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)

    def main2(comm):
        da = DMDA(comm, (4, 4), stencil_width=0)
        Laplacian(da)
        yield from comm.barrier()

    cluster2 = make_cluster(1)
    with pytest.raises(PETScError):
        cluster2.run(main2)


@pytest.mark.parametrize("nranks,dims", [(1, (16, 16)), (4, (16, 16)), (4, (8, 8, 8))])
def test_cg_converges_to_manufactured_solution(nranks, dims):
    cluster = make_cluster(nranks)

    def main(comm):
        da = DMDA(comm, dims)
        op = Laplacian(da)
        b = da.create_global_vec()
        x = da.create_global_vec()
        f, u_exact = manufactured(da)
        b.local[:] = f
        result = yield from CG(op, b, x, rtol=1e-10, maxits=500)
        err = float(np.max(np.abs(x.local - u_exact))) if x.local_size else 0.0
        err = yield from comm.allreduce(err, op=max)
        return result, err

    for result, err in cluster.run(main):
        assert result.converged
        assert result.residual_norms[-1] < 1e-9 * result.residual_norms[0] + 1e-12
        # discretisation error is O(h^2) ~ 4e-2 at h=1/16; solver error smaller
        assert err < 0.05


def test_cg_residual_history_monotone_overall():
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (16, 16))
        op = Laplacian(da)
        b = da.create_global_vec()
        x = da.create_global_vec()
        b.local[:] = 1.0
        result = yield from CG(op, b, x, rtol=1e-8, maxits=200)
        return result

    result = cluster.run(main)[0]
    assert result.converged
    assert result.residual_norms[-1] < result.residual_norms[0] * 1e-7


def test_cg_zero_rhs_converges_immediately():
    cluster = make_cluster(2)

    def main(comm):
        da = DMDA(comm, (8, 8))
        op = Laplacian(da)
        b = da.create_global_vec()
        x = da.create_global_vec()
        result = yield from CG(op, b, x, rtol=1e-8, atol=1e-30)
        return result.iterations

    assert cluster.run(main) == [0, 0]


def test_richardson_with_jacobi_damping_converges():
    cluster = make_cluster(2)

    def main(comm):
        da = DMDA(comm, (8, 8))
        op = Laplacian(da)
        b = da.create_global_vec()
        x = da.create_global_vec()
        b.local[:] = 1.0
        # damped Jacobi = Richardson with omega/diag scaling
        result = yield from Richardson(
            op, b, x, omega=0.9 / op.diag, rtol=1e-4, maxits=2000
        )
        return result

    result = cluster.run(main)[0]
    assert result.converged
    assert result.residual_norms[-1] <= 1e-4 * result.residual_norms[0]


def test_cg_detects_indefinite_operator():
    cluster = make_cluster(1)

    class Negated(Laplacian):
        def mult(self, x, y):
            yield from super().mult(x, y)
            y.local *= -1.0

    def main(comm):
        da = DMDA(comm, (8, 8))
        op = Negated(da)
        b = da.create_global_vec()
        x = da.create_global_vec()
        b.local[:] = 1.0
        yield from CG(op, b, x)

    with pytest.raises(PETScError):
        cluster.run(main)


def test_solver_parameter_validation():
    cluster = make_cluster(1)

    def main(comm):
        da = DMDA(comm, (4, 4))
        op = Laplacian(da)
        b = da.create_global_vec()
        x = da.create_global_vec()
        yield from CG(op, b, x, maxits=-1)

    with pytest.raises(PETScError):
        cluster.run(main)
