"""Unit tests for the metrics registry (``repro.prof.metrics``)."""

import math

import pytest

from repro.prof.metrics import (
    CATALOGUE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    snapshot_delta,
)


def test_counter_inc_and_total():
    c = Counter("repro_send_messages_total")
    c.inc()
    c.inc(4)
    assert c.value() == 5
    assert c.total == 5


def test_counter_labels_slice_series():
    c = Counter("repro_collectives_total")
    c.inc(labels={"op": "allgatherv"})
    c.inc(2, labels={"op": "barrier"})
    assert c.value(labels={"op": "allgatherv"}) == 1
    assert c.value(labels={"op": "barrier"}) == 2
    assert c.value(labels={"op": "bcast"}) == 0
    assert c.total == 3
    snap = c.snapshot()
    assert snap == {'{op="allgatherv"}': 1, '{op="barrier"}': 2}


def test_counter_rejects_decrease():
    c = Counter("repro_send_messages_total")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_write_wins():
    g = Gauge("repro_engine_events")
    g.set(10)
    g.set(3)
    assert g.value() == 3
    assert g.snapshot() == 3


def test_histogram_count_sum_mean_buckets():
    h = Histogram("repro_request_wait_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(55.55)
    assert h.mean == pytest.approx(55.55 / 4)
    assert h.bounds[-1] == math.inf
    text = "\n".join(h.render())
    # cumulative buckets, Prometheus style
    assert 'le="0.1"} 1' in text
    assert 'le="1"} 2' in text
    assert 'le="10"} 3' in text
    assert 'le="+Inf"} 4' in text
    assert "repro_request_wait_seconds_count 4" in text


def test_registry_strict_rejects_unknown_names():
    reg = MetricsRegistry()
    with pytest.raises(KeyError):
        reg.counter("repro_totally_made_up_total")


def test_registry_strict_rejects_kind_mismatch():
    reg = MetricsRegistry()
    # catalogued as a counter, asked for as a gauge
    with pytest.raises(TypeError):
        reg.gauge("repro_send_messages_total")


def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("repro_send_messages_total")
    b = reg.counter("repro_send_messages_total")
    assert a is b
    with pytest.raises(TypeError):
        reg.histogram("repro_send_messages_total")


def test_registry_nonstrict_allows_adhoc_names():
    reg = MetricsRegistry(strict=False)
    reg.counter("my_experiment_total").inc()
    assert reg.counter("my_experiment_total").value() == 1


def test_registry_strict_uses_catalogue_help():
    reg = MetricsRegistry()
    c = reg.counter("repro_send_messages_total")
    assert c.help == CATALOGUE["repro_send_messages_total"][1]


def test_snapshot_and_names():
    reg = MetricsRegistry()
    reg.counter("repro_send_messages_total").inc(3)
    reg.histogram("repro_request_wait_seconds").observe(0.5)
    assert "repro_send_messages_total" in reg
    assert "repro_pack_bytes_total" not in reg
    snap = reg.snapshot()
    assert snap["repro_send_messages_total"] == 3
    assert snap["repro_request_wait_seconds"]["count"] == 1
    assert reg.names() == sorted(snap)


def test_render_prometheus_exposition():
    reg = MetricsRegistry()
    reg.counter("repro_send_messages_total").inc(2)
    reg.gauge("repro_engine_events").set(7)
    text = reg.render_prometheus()
    assert "# TYPE repro_send_messages_total counter" in text
    assert "# HELP repro_send_messages_total" in text
    assert "repro_send_messages_total 2" in text
    assert "# TYPE repro_engine_events gauge" in text
    assert "repro_engine_events 7" in text
    assert text.endswith("\n")


def test_render_prometheus_escapes_label_values():
    # the text exposition format requires \ -> \\, " -> \", newline -> \n
    reg = MetricsRegistry(strict=False)
    reg.counter("repro_adhoc_total").inc(
        labels={"op": 'say "hi"', "path": "a\\b", "note": "two\nlines"})
    text = reg.render_prometheus()
    assert 'op="say \\"hi\\""' in text
    assert 'path="a\\\\b"' in text
    assert 'note="two\\nlines"' in text
    # every sample line stays a single physical line
    for line in text.splitlines():
        assert "\r" not in line
    from repro.prof.metrics import _escape_label_value

    assert _escape_label_value('\\"\n') == '\\\\\\"\\n'
    assert _escape_label_value("plain") == "plain"


def test_snapshot_delta_numeric_and_dict():
    before = {
        "repro_send_messages_total": 2,
        "repro_request_wait_seconds": {"count": 1, "sum": 1.0, "mean": 1.0},
    }
    now = {
        "repro_send_messages_total": 5,
        "repro_pack_bytes_total": 100,
        "repro_request_wait_seconds": {"count": 3, "sum": 7.0, "mean": 7 / 3},
    }
    d = snapshot_delta(now, before)
    assert d["repro_send_messages_total"] == 3
    assert d["repro_pack_bytes_total"] == 100      # absent-before counts from 0
    assert d["repro_request_wait_seconds"]["count"] == 2
    assert d["repro_request_wait_seconds"]["sum"] == pytest.approx(6.0)
    assert d["repro_request_wait_seconds"]["mean"] == pytest.approx(3.0)


def test_snapshot_delta_drops_unchanged():
    snap = {"repro_send_messages_total": 4,
            "repro_request_wait_seconds": {"count": 1, "sum": 1.0}}
    assert snapshot_delta(snap, snap) == {}


def test_catalogue_is_well_formed():
    assert len(CATALOGUE) >= 30
    kinds = {"counter", "gauge", "histogram"}
    for name, (kind, help_text) in CATALOGUE.items():
        assert name.startswith("repro_"), name
        assert kind in kinds, name
        assert help_text
        if kind == "counter":
            assert name.endswith(("_total", "_seconds_total")), name
