"""Tests for the distributed AIJ sparse matrix."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import Cluster, MPIConfig
from repro.petsc import CG, Layout, PETScError, Vec
from repro.petsc.aij import AIJMat
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def run_matvec(nranks, n, entries, x_global, backend="datatype"):
    """Assemble from per-rank entry lists and multiply; return y (global)."""
    cluster = make_cluster(nranks)

    def main(comm):
        lay = Layout(comm.size, n)
        A = AIJMat(comm, lay)
        rows, cols, vals = entries[comm.rank]
        A.set_values(rows, cols, vals)
        yield from A.assemble(backend=backend)
        x = Vec(comm, lay)
        start, end = x.owned_range
        x.local[:] = x_global[start:end]
        y = Vec(comm, lay)
        yield from A.mult(x, y)
        return y.local.copy()

    return np.concatenate(cluster.run(main))


def test_identity_matvec():
    n = 12
    x = np.arange(n, dtype=np.float64)
    # every rank sets its own diagonal rows
    entries = {
        r: (list(range(r * 3, r * 3 + 3)), list(range(r * 3, r * 3 + 3)), [1.0] * 3)
        for r in range(4)
    }
    y = run_matvec(4, n, entries, x)
    assert np.array_equal(y, x)


def test_offrank_insertion_lands_at_owner():
    """Rank 0 sets entries in rows owned by every other rank."""
    n = 8
    entries = {0: ([], [], []), 1: ([], [], [])}
    rows = list(range(n))
    cols = [(i + 1) % n for i in range(n)]
    vals = [float(i + 1) for i in range(n)]
    entries[0] = (rows, cols, vals)
    x = np.ones(n)
    y = run_matvec(2, n, entries, x)
    assert np.array_equal(y, np.array(vals))


def test_duplicate_entries_accumulate():
    n = 4
    entries = {
        0: ([1, 1], [2, 2], [3.0, 4.0]),   # same slot set twice
        1: ([1], [2], [5.0]),              # and once more from another rank
    }
    x = np.zeros(n)
    x[2] = 1.0
    y = run_matvec(2, n, entries, x)
    assert y[1] == 12.0


def test_matvec_matches_scipy_random():
    rng = np.random.default_rng(0)
    n = 40
    nranks = 4
    dense = sp.random(n, n, density=0.15, random_state=rng, format="coo")
    i, j, v = dense.row, dense.col, dense.data
    # scatter the entries across setter ranks arbitrarily
    setter = rng.integers(0, nranks, size=len(i))
    entries = {
        r: (i[setter == r].tolist(), j[setter == r].tolist(), v[setter == r].tolist())
        for r in range(nranks)
    }
    x = rng.random(n)
    for backend in ("datatype", "hand_tuned"):
        y = run_matvec(nranks, n, entries, x, backend=backend)
        assert np.allclose(y, dense.tocsr() @ x)


def test_empty_matrix():
    n = 6
    entries = {0: ([], [], []), 1: ([], [], [])}
    y = run_matvec(2, n, entries, np.ones(n))
    assert np.all(y == 0.0)


def test_validation_errors():
    cluster = make_cluster(2)

    def main(comm):
        lay = Layout(comm.size, 4)
        A = AIJMat(comm, lay)
        with pytest.raises(PETScError):
            A.set_values([9], [0], [1.0])     # row out of range
        with pytest.raises(PETScError):
            A.set_values([0], [9], [1.0])     # col out of range
        with pytest.raises(PETScError):
            A.set_values([0, 1], [0], [1.0])  # length mismatch
        with pytest.raises(PETScError):
            A.set_values([0], [0], [1.0], mode="insert")
        x = Vec(comm, lay)
        y = Vec(comm, lay)
        with pytest.raises(PETScError):
            yield from A.mult(x, y)           # not assembled
        yield from A.assemble()
        with pytest.raises(PETScError):
            A.set_values([0], [0], [1.0])     # already assembled
        with pytest.raises(PETScError):
            yield from A.assemble()
        return True

    assert all(cluster.run(main))


def test_cg_solves_aij_laplacian_1d():
    """Assemble the 1-D Dirichlet Laplacian as an AIJ matrix and solve."""
    n = 32
    nranks = 4
    cluster = make_cluster(nranks)

    def main(comm):
        lay = Layout(comm.size, n)
        A = AIJMat(comm, lay)
        start, end = lay.start(comm.rank), lay.end(comm.rank)
        h2 = float(n + 1) ** 2
        for i in range(start, end):
            A.set_value(i, i, 2.0 * h2)
            if i > 0:
                A.set_value(i, i - 1, -h2)
            if i < n - 1:
                A.set_value(i, i + 1, -h2)
        yield from A.assemble()
        b = Vec(comm, lay)
        b.local[:] = 1.0
        x = Vec(comm, lay)
        result = yield from CG(A, b, x, rtol=1e-10, maxits=200)
        return result, x.local.copy()

    results = cluster.run(main)
    assert results[0][0].converged
    got = np.concatenate([r[1] for r in results])
    # oracle: dense solve
    h2 = float(n + 1) ** 2
    A = np.zeros((n, n))
    for i in range(n):
        A[i, i] = 2 * h2
        if i > 0:
            A[i, i - 1] = -h2
        if i < n - 1:
            A[i, i + 1] = -h2
    expect = np.linalg.solve(A, np.ones(n))
    assert np.allclose(got, expect, atol=1e-8)


def test_nnz_property():
    cluster = make_cluster(2)

    def main(comm):
        lay = Layout(comm.size, 4)
        A = AIJMat(comm, lay)
        if comm.rank == 0:
            A.set_values([0, 1, 2, 3], [0, 1, 2, 3], [1.0] * 4)
        yield from A.assemble()
        return A.nnz

    # nnz is per-rank (local blocks)
    assert sum(make_cluster(2).run(main)) == 4


@given(st.integers(2, 5), st.integers(4, 24), st.data())
@settings(max_examples=20, deadline=None)
def test_property_random_assembly_matches_scipy(nranks, n, data):
    nnz = data.draw(st.integers(0, 40))
    rng = np.random.default_rng(data.draw(st.integers(0, 10**6)))
    i = rng.integers(0, n, nnz)
    j = rng.integers(0, n, nnz)
    v = rng.standard_normal(nnz)
    setter = rng.integers(0, nranks, nnz)
    entries = {
        r: (i[setter == r].tolist(), j[setter == r].tolist(), v[setter == r].tolist())
        for r in range(nranks)
    }
    x = rng.random(n)
    y = run_matvec(nranks, n, entries, x)
    oracle = sp.coo_matrix((v, (i, j)), shape=(n, n)).tocsr() @ x
    assert np.allclose(y, oracle)
