"""Tests for the `python -m repro.bench` command-line entry point."""

from repro.bench.__main__ import main


def test_unknown_figure_rejected(capsys):
    assert main(["fig99"]) == 2
    out = capsys.readouterr().out
    assert "unknown figure" in out


def test_single_figure_runs(capsys):
    assert main(["fig12"]) == 0
    out = capsys.readouterr().out
    assert "Fig12" in out
    assert "1024x1024" in out
    assert "wall time" in out


def test_transpose_column_type_structure():
    from repro.apps.transpose import column_major_type

    dt = column_major_type(16)
    assert dt.size == 16 * 16 * 8
    assert dt.num_blocks == 16 * 16  # every element its own block
    blocks = dt.flatten()
    # first column's elements stride by one row (16 doubles)
    assert blocks.offsets[1] - blocks.offsets[0] == 16 * 8
