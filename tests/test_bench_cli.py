"""Tests for the `python -m repro.bench` command-line entry point."""

import json

from repro.bench.__main__ import main


def test_unknown_figure_rejected(capsys):
    assert main(["fig99"]) == 2
    out = capsys.readouterr().out
    assert "unknown figure" in out


def test_single_figure_runs(capsys):
    assert main(["fig12"]) == 0
    out = capsys.readouterr().out
    assert "Fig12" in out
    assert "1024x1024" in out
    assert "wall time" in out


def test_trace_out_requires_profile(capsys):
    assert main(["fig12", "--trace-out", "t.json"]) == 2
    assert "--trace-out requires --profile" in capsys.readouterr().out


def test_profile_emit_json_and_trace(tmp_path, capsys):
    report = tmp_path / "bench.json"
    trace = tmp_path / "trace.json"
    assert main(["fig12", "--profile",
                 "--emit-json", str(report),
                 "--trace-out", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "pack/compute/wire/wait breakdown" in out
    assert "breakdown consistency (sums within 1%): ok" in out

    doc = json.loads(report.read_text())
    assert doc["schema"] == "repro-bench/1"
    assert "Fig12" in doc["figures"]
    prof = doc["profile"]
    assert prof["clusters"] > 0
    assert prof["breakdown_valid"] is True
    assert prof["breakdown_rows"] > 0
    assert prof["metrics"]["repro_send_messages_total"] > 0
    assert "prometheus" not in prof           # bulky text form is stripped
    assert prof["row_metrics"]["Fig12"]       # per-row metric deltas
    assert any(a["op"] == "isend" for a in prof["breakdown"])

    tr = json.loads(trace.read_text())
    assert tr["traceEvents"]
    assert any(e["ph"] == "X" for e in tr["traceEvents"])


def test_transpose_column_type_structure():
    from repro.apps.transpose import column_major_type

    dt = column_major_type(16)
    assert dt.size == 16 * 16 * 8
    assert dt.num_blocks == 16 * 16  # every element its own block
    blocks = dt.flatten()
    # first column's elements stride by one row (16 doubles)
    assert blocks.offsets[1] - blocks.offsets[0] == 16 * 8
