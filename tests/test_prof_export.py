"""Unit tests for trace export and breakdown attribution (``repro.prof.export``)."""

import json
from types import SimpleNamespace

import pytest

from repro.prof import export
from repro.prof.export import (
    PACK_NAMES,
    aggregate_breakdown,
    breakdown,
    chrome_trace,
    render_breakdown,
    validate_breakdown,
    wait_for_peers_report,
    write_chrome_trace,
)
from repro.prof.spans import Tracer


class FakeEngine:
    def __init__(self):
        self.now = 0.0


def xfer(src, dst, t0, t1, nbytes=64, tag=0):
    return SimpleNamespace(src=src, dst=dst, t_start=t0, t_end=t1,
                           nbytes=nbytes, tag=tag)


def scripted_profiler():
    """A hand-built profile on rank 0:

    - one ``collective`` span covering [0, 10],
    - cpu ``pack``  [0, 2]    -> pack    = 2
    - cpu ``compute`` [2, 3]  -> compute = 1
    - wire transfer [2.5, 6]  -> wire    = 3   (2.5..3 hidden behind CPU)
    - residual                -> wait    = 4
    """
    clock = FakeEngine()
    tracer = Tracer(clock)
    coll = tracer.span("collective", "allgatherv", 0, algorithm="ring")
    sp = coll.__enter__()
    with tracer.span("cpu", "pack", 0):
        clock.now = 2.0
    with tracer.span("cpu", "compute", 0):
        clock.now = 3.0
    clock.now = 10.0
    coll.__exit__(None, None, None)
    prof = SimpleNamespace(
        tracer=tracer,
        transfers=[xfer(0, 1, 2.5, 6.0, nbytes=640)],
        label="test cluster",
    )
    return prof, sp


def test_interval_helpers():
    assert export._union([(0, 1), (0.5, 2), (3, 4)]) == [(0, 2), (3, 4)]
    assert export._union([(1, 1)]) == []          # empty intervals dropped
    assert export._length([(0, 2), (3, 4)]) == 3
    assert export._clip([(0, 10)], 2, 5) == [(2, 5)]
    assert export._clip([(0, 1)], 2, 5) == []
    assert export._subtract([(0, 10)], [(2, 3), (5, 7)]) == [
        (0, 2), (3, 5), (7, 10),
    ]
    assert export._subtract([(0, 4)], [(0, 10)]) == []


def test_breakdown_attribution_sums_exactly():
    prof, _sp = scripted_profiler()
    rows = breakdown(prof, "collective")
    assert len(rows) == 1
    row = rows[0]
    assert row["op"] == "allgatherv"
    assert row["rank"] == 0
    assert row["elapsed"] == pytest.approx(10.0)
    assert row["pack"] == pytest.approx(2.0)
    assert row["compute"] == pytest.approx(1.0)
    assert row["wire"] == pytest.approx(3.0)      # 2.5..3 hidden behind CPU
    assert row["wait"] == pytest.approx(4.0)
    assert row["pack"] + row["compute"] + row["wire"] + row["wait"] == \
        pytest.approx(row["elapsed"])
    assert row["attrs"]["algorithm"] == "ring"
    assert validate_breakdown(rows)


def test_breakdown_skips_open_spans_and_other_categories():
    clock = FakeEngine()
    tracer = Tracer(clock)
    tracer.span("collective", "bcast", 0).__enter__()   # never closed
    with tracer.span("p2p", "isend", 0):
        clock.now = 1.0
    prof = SimpleNamespace(tracer=tracer, transfers=[])
    assert breakdown(prof, "collective") == []
    assert [r["op"] for r in breakdown(prof, "p2p")] == ["isend"]


def test_validate_breakdown_catches_drift():
    rows = [{"op": "x", "elapsed": 10.0, "pack": 2.0, "compute": 1.0,
             "wire": 3.0, "wait": 4.0}]
    assert validate_breakdown(rows)
    rows[0]["wait"] = 3.0                          # 10% short
    assert not validate_breakdown(rows)
    assert validate_breakdown(rows, rel_tol=0.2)


def test_aggregate_and_render():
    prof, _sp = scripted_profiler()
    rows = breakdown(prof, "collective")
    agg = aggregate_breakdown(rows)
    assert len(agg) == 1
    a = agg[0]
    assert a["op"] == "allgatherv"
    assert a["calls"] == 1
    assert a["pack_pct"] == pytest.approx(20.0)
    assert a["wait_pct"] == pytest.approx(40.0)
    text = render_breakdown(rows)
    assert "allgatherv" in text
    assert "wait%" in text


def test_wait_for_peers_report():
    rows = [
        {"op": "allgatherv", "elapsed": 10.0, "wait": 4.0},
        {"op": "allgatherv", "elapsed": 10.0, "wait": 8.0},
        {"op": "barrier", "elapsed": 0.0, "wait": 0.0},
    ]
    rep = wait_for_peers_report(rows)
    assert rep["allgatherv"]["rows"] == 2
    assert rep["allgatherv"]["min_wait_share"] == pytest.approx(0.4)
    assert rep["allgatherv"]["max_wait_share"] == pytest.approx(0.8)
    assert rep["allgatherv"]["mean_wait_share"] == pytest.approx(0.6)
    assert rep["barrier"]["mean_wait_share"] == 0.0


def test_chrome_trace_structure():
    prof, _sp = scripted_profiler()
    obj = chrome_trace(prof)
    events = obj["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    slices = [e for e in events if e["ph"] == "X"]
    assert {"process_name", "thread_name"} <= {e["name"] for e in meta}
    # process named after the profiler label
    pname = next(e for e in meta if e["name"] == "process_name")
    assert pname["args"]["name"] == "test cluster"
    # 3 spans + 1 wire transfer, ts/dur in microseconds
    assert len(slices) == 4
    coll = next(e for e in slices if e["name"] == "allgatherv")
    assert coll["ts"] == pytest.approx(0.0)
    assert coll["dur"] == pytest.approx(10.0 * 1e6)
    wire = next(e for e in slices if e["cat"] == "wire")
    assert wire["name"] == "xfer 0->1"
    assert wire["args"]["nbytes"] == 640
    # every slice points at a declared thread
    tids = {e["tid"] for e in meta if e["name"] == "thread_name"}
    assert all(e["tid"] in tids for e in slices)


def test_chrome_trace_multiple_profilers_get_distinct_pids():
    p1, _ = scripted_profiler()
    p2, _ = scripted_profiler()
    obj = chrome_trace([p1, p2])
    pids = {e["pid"] for e in obj["traceEvents"]}
    assert pids == {0, 1}


def test_write_chrome_trace_roundtrip(tmp_path):
    prof, _sp = scripted_profiler()
    path = tmp_path / "trace.json"
    obj = write_chrome_trace(str(path), prof)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(obj))
    assert loaded["displayTimeUnit"] == "ms"


def test_json_safe_attrs():
    clock = FakeEngine()
    tracer = Tracer(clock)
    with tracer.span("cpu", "pack", 0, shape=(4, 4), dtype=object()):
        pass
    prof = SimpleNamespace(tracer=tracer, transfers=[])
    obj = chrome_trace(prof)
    json.dumps(obj)  # must not raise


def test_pack_names_cover_the_ledger_categories():
    assert PACK_NAMES == {"pack", "search", "lookahead", "unpack"}
