"""Unit tests for trace export and breakdown attribution (``repro.prof.export``)."""

import json
from types import SimpleNamespace

import pytest

from repro.prof import export
from repro.prof.export import (
    PACK_NAMES,
    aggregate_breakdown,
    breakdown,
    chrome_trace,
    render_breakdown,
    validate_breakdown,
    wait_for_peers_report,
    write_chrome_trace,
)
from repro.prof.spans import Tracer


class FakeEngine:
    def __init__(self):
        self.now = 0.0


def xfer(src, dst, t0, t1, nbytes=64, tag=0):
    return SimpleNamespace(src=src, dst=dst, t_start=t0, t_end=t1,
                           nbytes=nbytes, tag=tag)


def scripted_profiler():
    """A hand-built profile on rank 0:

    - one ``collective`` span covering [0, 10],
    - cpu ``pack``  [0, 2]    -> pack    = 2
    - cpu ``compute`` [2, 3]  -> compute = 1
    - wire transfer [2.5, 6]  -> wire    = 3   (2.5..3 hidden behind CPU)
    - residual                -> wait    = 4
    """
    clock = FakeEngine()
    tracer = Tracer(clock)
    coll = tracer.span("collective", "allgatherv", 0, algorithm="ring")
    sp = coll.__enter__()
    with tracer.span("cpu", "pack", 0):
        clock.now = 2.0
    with tracer.span("cpu", "compute", 0):
        clock.now = 3.0
    clock.now = 10.0
    coll.__exit__(None, None, None)
    prof = SimpleNamespace(
        tracer=tracer,
        transfers=[xfer(0, 1, 2.5, 6.0, nbytes=640)],
        label="test cluster",
    )
    return prof, sp


def test_interval_helpers():
    assert export._union([(0, 1), (0.5, 2), (3, 4)]) == [(0, 2), (3, 4)]
    assert export._union([(1, 1)]) == []          # empty intervals dropped
    assert export._length([(0, 2), (3, 4)]) == 3
    assert export._clip([(0, 10)], 2, 5) == [(2, 5)]
    assert export._clip([(0, 1)], 2, 5) == []
    assert export._subtract([(0, 10)], [(2, 3), (5, 7)]) == [
        (0, 2), (3, 5), (7, 10),
    ]
    assert export._subtract([(0, 4)], [(0, 10)]) == []


def test_breakdown_attribution_sums_exactly():
    prof, _sp = scripted_profiler()
    rows = breakdown(prof, "collective")
    assert len(rows) == 1
    row = rows[0]
    assert row["op"] == "allgatherv"
    assert row["rank"] == 0
    assert row["elapsed"] == pytest.approx(10.0)
    assert row["pack"] == pytest.approx(2.0)
    assert row["compute"] == pytest.approx(1.0)
    assert row["wire"] == pytest.approx(3.0)      # 2.5..3 hidden behind CPU
    assert row["wait"] == pytest.approx(4.0)
    assert row["pack"] + row["compute"] + row["wire"] + row["wait"] == \
        pytest.approx(row["elapsed"])
    assert row["attrs"]["algorithm"] == "ring"
    assert validate_breakdown(rows)


def test_breakdown_skips_open_spans_and_other_categories():
    clock = FakeEngine()
    tracer = Tracer(clock)
    tracer.span("collective", "bcast", 0).__enter__()   # never closed
    with tracer.span("p2p", "isend", 0):
        clock.now = 1.0
    prof = SimpleNamespace(tracer=tracer, transfers=[])
    assert breakdown(prof, "collective") == []
    assert [r["op"] for r in breakdown(prof, "p2p")] == ["isend"]


def test_validate_breakdown_catches_drift():
    rows = [{"op": "x", "elapsed": 10.0, "pack": 2.0, "compute": 1.0,
             "wire": 3.0, "wait": 4.0}]
    assert validate_breakdown(rows)
    rows[0]["wait"] = 3.0                          # 10% short
    assert not validate_breakdown(rows)
    assert validate_breakdown(rows, rel_tol=0.2)


def test_aggregate_and_render():
    prof, _sp = scripted_profiler()
    rows = breakdown(prof, "collective")
    agg = aggregate_breakdown(rows)
    assert len(agg) == 1
    a = agg[0]
    assert a["op"] == "allgatherv"
    assert a["calls"] == 1
    assert a["pack_pct"] == pytest.approx(20.0)
    assert a["wait_pct"] == pytest.approx(40.0)
    text = render_breakdown(rows)
    assert "allgatherv" in text
    assert "wait%" in text


def test_wait_for_peers_report():
    rows = [
        {"op": "allgatherv", "elapsed": 10.0, "wait": 4.0},
        {"op": "allgatherv", "elapsed": 10.0, "wait": 8.0},
        {"op": "barrier", "elapsed": 0.0, "wait": 0.0},
    ]
    rep = wait_for_peers_report(rows)
    assert rep["allgatherv"]["rows"] == 2
    assert rep["allgatherv"]["min_wait_share"] == pytest.approx(0.4)
    assert rep["allgatherv"]["max_wait_share"] == pytest.approx(0.8)
    assert rep["allgatherv"]["mean_wait_share"] == pytest.approx(0.6)
    assert rep["barrier"]["mean_wait_share"] == 0.0


def test_chrome_trace_structure():
    prof, _sp = scripted_profiler()
    obj = chrome_trace(prof)
    events = obj["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    slices = [e for e in events if e["ph"] == "X"]
    assert {"process_name", "thread_name"} <= {e["name"] for e in meta}
    # process named after the profiler label
    pname = next(e for e in meta if e["name"] == "process_name")
    assert pname["args"]["name"] == "test cluster"
    # 3 spans + 1 wire transfer, ts/dur in microseconds
    assert len(slices) == 4
    coll = next(e for e in slices if e["name"] == "allgatherv")
    assert coll["ts"] == pytest.approx(0.0)
    assert coll["dur"] == pytest.approx(10.0 * 1e6)
    wire = next(e for e in slices if e["cat"] == "wire")
    assert wire["name"] == "xfer 0->1"
    assert wire["args"]["nbytes"] == 640
    # every slice points at a declared thread
    tids = {e["tid"] for e in meta if e["name"] == "thread_name"}
    assert all(e["tid"] in tids for e in slices)


def test_chrome_trace_multiple_profilers_get_distinct_pids():
    p1, _ = scripted_profiler()
    p2, _ = scripted_profiler()
    obj = chrome_trace([p1, p2])
    pids = {e["pid"] for e in obj["traceEvents"]}
    assert pids == {0, 1}


def test_write_chrome_trace_roundtrip(tmp_path):
    prof, _sp = scripted_profiler()
    path = tmp_path / "trace.json"
    obj = write_chrome_trace(str(path), prof)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(obj))
    assert loaded["displayTimeUnit"] == "ms"


def test_json_safe_attrs():
    clock = FakeEngine()
    tracer = Tracer(clock)
    with tracer.span("cpu", "pack", 0, shape=(4, 4), dtype=object()):
        pass
    prof = SimpleNamespace(tracer=tracer, transfers=[])
    obj = chrome_trace(prof)
    json.dumps(obj)  # must not raise


def test_pack_names_cover_the_ledger_categories():
    assert PACK_NAMES == {"pack", "search", "lookahead", "unpack"}


# -- flow events (send -> wire -> unpack arrows) -----------------------------

def messaging_profiler():
    """rank 0 isends (msg_id 7) at [0, 1]; wire [1, 5]; rank 1 unpacks
    [5, 6] -- the full causal chain of one typed message."""
    clock = FakeEngine()
    tracer = Tracer(clock)
    with tracer.span("p2p", "isend", 0, msg_id=7):
        clock.now = 1.0
    clock.now = 5.0
    with tracer.span("cpu", "unpack", 1, lane="io", msg_id=7):
        clock.now = 6.0
    transfer = SimpleNamespace(src=0, dst=1, t_start=1.0, t_end=5.0,
                               nbytes=640, tag=0, msg_id=7)
    return SimpleNamespace(tracer=tracer, transfers=[transfer], label=None)


def test_flow_events_tie_send_wire_and_unpack():
    prof = messaging_profiler()
    events = chrome_trace(prof)["traceEvents"]
    flows = [e for e in events if e.get("cat") == "flow"]
    assert [e["ph"] for e in flows] == ["s", "t", "f"]
    assert {e["id"] for e in flows} == {"msg7"}
    start, step, finish = flows
    meta = {e["args"]["name"]: e["tid"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"}
    assert start["tid"] == meta["rank 0"]           # the isend span's track
    assert start["ts"] == pytest.approx(0.0)
    assert step["tid"] == meta["wire from rank 0"]
    assert step["ts"] == pytest.approx(1.0 * 1e6)
    assert finish["tid"] == meta["rank 1 [io]"]     # the unpack span's track
    assert finish["ts"] == pytest.approx(5.0 * 1e6)
    assert finish["bp"] == "e"
    # the transfer slice itself carries the causal id too
    wire = next(e for e in events if e.get("cat") == "wire" and e["ph"] == "X")
    assert wire["args"]["msg_id"] == 7


def test_flow_events_skip_unidentified_and_self_transfers():
    clock = FakeEngine()
    tracer = Tracer(clock)
    with tracer.span("cpu", "compute", 0):
        clock.now = 1.0
    prof = SimpleNamespace(tracer=tracer, transfers=[
        xfer(0, 1, 0.0, 1.0),                       # no msg_id: raw RMA
        SimpleNamespace(src=2, dst=2, t_start=0.0, t_end=1.0,
                        nbytes=8, tag=0, msg_id=9),  # self-transfer
    ])
    events = chrome_trace(prof)["traceEvents"]
    assert [e for e in events if e.get("cat") == "flow"] == []


def test_flow_events_ignore_reverse_direction_ack():
    """Under the reliable transport the zero-byte ack shares the payload's
    msg_id in the reverse direction; the arrow must follow the payload."""
    prof = messaging_profiler()
    prof.transfers.append(SimpleNamespace(
        src=1, dst=0, t_start=6.0, t_end=6.5, nbytes=0, tag=0, msg_id=7))
    flows = [e for e in chrome_trace(prof)["traceEvents"]
             if e.get("cat") == "flow"]
    assert [e["ph"] for e in flows] == ["s", "t", "f"]
    finish = flows[-1]
    assert finish["ts"] == pytest.approx(5.0 * 1e6)  # unpack, not the ack


# -- degenerate runs through every exporter ----------------------------------

def empty_profiler():
    return SimpleNamespace(tracer=Tracer(FakeEngine()), transfers=[],
                           label=None)


def test_exporters_on_empty_profiler(tmp_path):
    prof = empty_profiler()
    assert breakdown(prof, "collective") == []
    assert validate_breakdown([])
    assert aggregate_breakdown([]) == []
    assert wait_for_peers_report([]) == {}
    obj = chrome_trace(prof)
    assert [e for e in obj["traceEvents"] if e["ph"] != "M"] == []
    path = tmp_path / "empty.json"
    write_chrome_trace(str(path), prof)
    assert json.loads(path.read_text())["traceEvents"] is not None


def test_chrome_trace_empty_profiler_list():
    obj = chrome_trace([])
    assert obj["traceEvents"] == []
    json.dumps(obj)


def test_zero_span_rank_still_gets_a_thread():
    """A rank that only appears as a transfer endpoint (no spans at all)
    must not crash the exporters."""
    clock = FakeEngine()
    tracer = Tracer(clock)
    coll = tracer.span("collective", "allgatherv", 0)
    coll.__enter__()
    clock.now = 4.0
    coll.__exit__(None, None, None)
    prof = SimpleNamespace(tracer=tracer,
                           transfers=[xfer(1, 0, 1.0, 2.0)], label=None)
    rows = breakdown(prof, "collective")
    assert len(rows) == 1
    assert rows[0]["wire"] == pytest.approx(1.0)
    events = chrome_trace(prof)["traceEvents"]
    wire = next(e for e in events if e.get("cat") == "wire")
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert "wire from rank 1" in names
    assert wire["dur"] == pytest.approx(1.0 * 1e6)


def test_single_event_trace():
    """The minimal non-empty profile: exactly one instantaneous-ish span."""
    clock = FakeEngine()
    tracer = Tracer(clock)
    coll = tracer.span("collective", "barrier", 0)
    coll.__enter__()
    clock.now = 1e-9
    coll.__exit__(None, None, None)
    prof = SimpleNamespace(tracer=tracer, transfers=[], label=None)
    rows = breakdown(prof, "collective")
    assert len(rows) == 1
    assert rows[0]["elapsed"] == pytest.approx(1e-9)
    assert rows[0]["wait"] == pytest.approx(1e-9)
    assert validate_breakdown(rows)
    slices = [e for e in chrome_trace(prof)["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 1
    assert slices[0]["name"] == "barrier"
