"""Tests for index sets."""

import pytest

from repro.petsc import BlockIS, GeneralIS, PETScError, StrideIS


def test_general_is():
    s = GeneralIS([5, 2, 9])
    assert s.indices().tolist() == [5, 2, 9]
    assert len(s) == 3


def test_general_is_rejects_2d():
    with pytest.raises(PETScError):
        GeneralIS([[1, 2], [3, 4]])


def test_stride_is():
    s = StrideIS(5, first=10, step=3)
    assert s.indices().tolist() == [10, 13, 16, 19, 22]


def test_stride_is_negative_step():
    s = StrideIS(3, first=10, step=-2)
    assert s.indices().tolist() == [10, 8, 6]


def test_stride_is_empty():
    assert len(StrideIS(0)) == 0


def test_stride_is_zero_step_rejected():
    with pytest.raises(PETScError):
        StrideIS(3, 0, 0)


def test_block_is():
    s = BlockIS(3, [0, 2])
    assert s.indices().tolist() == [0, 1, 2, 6, 7, 8]


def test_block_is_validation():
    with pytest.raises(PETScError):
        BlockIS(0, [1])


def test_validate_against():
    s = GeneralIS([0, 5, 9])
    s.validate_against(10)
    with pytest.raises(PETScError):
        s.validate_against(9)
    with pytest.raises(PETScError):
        GeneralIS([-1]).validate_against(10)
    GeneralIS([]).validate_against(0)  # empty always fine
