"""Tests for MPIConfig and CostModel configuration plumbing."""

import dataclasses

import pytest

from repro.mpi import MPIConfig
from repro.util import CostLedger, CostModel


def test_baseline_and_optimized_flags():
    base = MPIConfig.baseline()
    opt = MPIConfig.optimized()
    assert not base.dual_context_engine and opt.dual_context_engine
    assert not base.adaptive_allgatherv and opt.adaptive_allgatherv
    assert not base.binned_alltoallw and opt.binned_alltoallw
    assert base.name == "MVAPICH2-0.9.5"
    assert opt.name == "MVAPICH2-New"


def test_config_with_creates_modified_copy():
    base = MPIConfig.baseline()
    tweaked = base.with_(dual_context_engine=True, eager_threshold=1)
    assert tweaked.dual_context_engine
    assert tweaked.eager_threshold == 1
    assert not base.dual_context_engine  # original untouched


def test_with_appends_flag_suffix_to_name():
    base = MPIConfig.baseline()
    assert base.with_(adaptive_allgatherv=True).name == \
        "MVAPICH2-0.9.5+adaptive_allgatherv"
    assert MPIConfig.optimized().with_(binned_alltoallw=False).name == \
        "MVAPICH2-New-binned_alltoallw"
    # multiple changed flags: suffixes in field-declaration order
    both = base.with_(binned_alltoallw=True, adaptive_allgatherv=True)
    assert both.name == "MVAPICH2-0.9.5+adaptive_allgatherv+binned_alltoallw"


def test_with_suffix_skips_unchanged_and_nonflag_fields():
    base = MPIConfig.baseline()
    # passing the current value is not a change
    assert base.with_(adaptive_allgatherv=False).name == base.name
    # non-boolean fields never rename
    assert base.with_(eager_threshold=1).name == base.name
    assert base.with_(selection_policy="adaptive").name == base.name


def test_with_explicit_name_wins():
    cfg = MPIConfig.baseline().with_(adaptive_allgatherv=True, name="Custom")
    assert cfg.name == "Custom"


def test_selection_policy_defaults():
    assert MPIConfig.baseline().selection_policy is None
    assert MPIConfig.optimized().selection_policy is None
    assert MPIConfig.baseline().tuning_table is None
    auto = MPIConfig.optimized().with_(selection_policy="autotuned",
                                       tuning_table="table.json")
    assert auto.selection_policy == "autotuned"
    assert auto.tuning_table == "table.json"


def test_config_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        MPIConfig.baseline().eager_threshold = 0


def test_costmodel_with_and_frozen():
    cost = CostModel()
    tweaked = cost.with_(alpha=1e-6)
    assert tweaked.alpha == 1e-6
    assert cost.alpha != 1e-6
    with pytest.raises(dataclasses.FrozenInstanceError):
        cost.alpha = 0.0


def test_transfer_time_monotone():
    cost = CostModel()
    assert cost.transfer_time(10) < cost.transfer_time(10_000)
    assert cost.transfer_time(0) == cost.alpha


def test_ledger_charge_and_fractions():
    led = CostLedger()
    led.charge("a", 3.0)
    led.charge("b", 1.0)
    led.charge("a", 1.0)
    assert led.get("a") == 4.0
    assert led.total == 5.0
    fr = led.fractions()
    assert fr["a"] == pytest.approx(0.8)
    assert fr["b"] == pytest.approx(0.2)


def test_ledger_negative_rejected():
    with pytest.raises(ValueError):
        CostLedger().charge("x", -1.0)


def test_ledger_merge():
    a = CostLedger()
    a.charge("x", 1.0)
    b = CostLedger()
    b.charge("x", 2.0)
    b.charge("y", 3.0)
    merged = a.merged(b)
    assert merged.get("x") == 3.0
    assert merged.get("y") == 3.0
    assert a.get("x") == 1.0  # originals untouched


def test_empty_ledger_fractions():
    assert CostLedger().fractions() == {}
    led = CostLedger()
    led.charge("z", 0.0)
    assert led.fractions() == {"z": 0.0}
