"""Tests for VecScatter ADD mode (ADD_VALUES semantics)."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import GeneralIS, Layout, PETScError, Vec, VecScatter
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


@pytest.mark.parametrize("backend", ["hand_tuned", "datatype"])
def test_add_accumulates_into_destination(backend):
    gsize = 12
    src_idx = [0, 3, 6, 9]
    dst_idx = [1, 1 + 3, 1 + 6, 1 + 9]
    cluster = make_cluster(3)

    def main(comm):
        lay = Layout(comm.size, gsize)
        a = Vec(comm, lay)
        b = Vec(comm, lay)
        start, end = a.owned_range
        a.local[:] = np.arange(start, end, dtype=np.float64)
        b.local[:] = 100.0
        sc = VecScatter.from_index_sets(
            comm, lay, GeneralIS(src_idx), lay, GeneralIS(dst_idx)
        )
        yield from sc.scatter(a, b, backend=backend, mode="add")
        return b.local.copy()

    got = np.concatenate(cluster.run(main))
    expect = np.full(gsize, 100.0)
    for s, d in zip(src_idx, dst_idx):
        expect[d] += s
    assert np.array_equal(got, expect)


@pytest.mark.parametrize("backend", ["hand_tuned", "datatype"])
def test_add_and_insert_differ(backend):
    gsize = 8
    cluster = make_cluster(2)

    def main(comm):
        lay = Layout(comm.size, gsize)
        a = Vec(comm, lay)
        yield from a.set(2.0)
        ins = Vec(comm, lay)
        yield from ins.set(5.0)
        add = Vec(comm, lay)
        yield from add.set(5.0)
        idx = GeneralIS(list(range(gsize)))
        sc = VecScatter.from_index_sets(comm, lay, idx, lay, idx)
        yield from sc.scatter(a, ins, backend=backend, mode="insert")
        yield from sc.scatter(a, add, backend=backend, mode="add")
        return ins.local.copy(), add.local.copy()

    for ins, add in make_cluster(2).run(main):
        assert np.all(ins == 2.0)
        assert np.all(add == 7.0)


def test_reverse_ghost_accumulation():
    """The classic ADD use: reverse-scatter contributions from many sources
    into one owner entry (here: every rank adds into global entry 0)."""
    n = 4
    gsize = 8
    # each rank r contributes its first owned entry into global slot 0
    cluster = make_cluster(n)

    def main(comm):
        lay = Layout(comm.size, gsize)
        src_idx = [lay.start(r) for r in range(n)]
        dst_dup = [0] * n
        a = Vec(comm, lay)
        yield from a.set(1.0)
        b = Vec(comm, lay)
        sc = VecScatter(
            comm,
            send_map={0: lay.to_local(np.array([lay.start(comm.rank)]), comm.rank)}
            if comm.rank != 0 else {},
            recv_map={r: np.array([0]) for r in range(1, n)} if comm.rank == 0 else {},
            local_pairs=(np.array([0]), np.array([0])) if comm.rank == 0
            else (np.empty(0, dtype=int), np.empty(0, dtype=int)),
        )
        yield from sc.scatter(a, b, mode="add")
        return b.local.copy()

    results = cluster.run(main)
    assert results[0][0] == float(n)  # all n contributions accumulated
    assert np.all(np.concatenate(results)[1:] == 0.0)


def test_add_with_duplicate_local_offsets():
    """np.add.at semantics: duplicated destination offsets accumulate."""
    cluster = make_cluster(1)

    def main(comm):
        lay = Layout(1, 4)
        a = Vec(comm, lay)
        a.local[:] = [1.0, 2.0, 3.0, 4.0]
        b = Vec(comm, lay)
        sc = VecScatter(
            comm, {}, {},
            local_pairs=(np.array([0, 1, 2]), np.array([3, 3, 3])),
        )
        yield from sc.scatter(a, b, mode="add")
        return b.local.copy()

    got = cluster.run(main)[0]
    assert got.tolist() == [0.0, 0.0, 0.0, 6.0]


def test_invalid_mode_rejected():
    cluster = make_cluster(1)

    def main(comm):
        lay = Layout(1, 4)
        v = Vec(comm, lay)
        sc = VecScatter(comm, {}, {}, (np.empty(0, dtype=int), np.empty(0, dtype=int)))
        yield from sc.scatter(v, v, mode="subtract")

    with pytest.raises(PETScError):
        cluster.run(main)
