"""Unit and property tests for TypedBuffer pack/unpack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import (
    DOUBLE,
    INT,
    Contiguous,
    DatatypeError,
    Indexed,
    Struct,
    Subarray,
    TypedBuffer,
    Vector,
)


def test_pack_contiguous_is_copy():
    buf = np.arange(10, dtype=np.float64)
    tb = TypedBuffer(buf, DOUBLE, count=10)
    packed = tb.pack()
    assert packed.view(np.float64).tolist() == buf.tolist()


def test_pack_column_of_matrix_matches_numpy():
    """The paper's running example: column of an 8x8 matrix, 3 doubles/elem."""
    m = np.arange(8 * 8 * 3, dtype=np.float64).reshape(8, 8, 3)
    element = Contiguous(3, DOUBLE)
    column = Vector(8, 1, 8, element)
    tb = TypedBuffer(m, column)
    got = tb.pack().view(np.float64)
    expect = m[:, 0, :].reshape(-1)
    assert np.array_equal(got, expect)


def test_pack_arbitrary_column():
    m = np.random.default_rng(0).random((16, 16))
    col = Vector(16, 1, 16, DOUBLE)
    tb = TypedBuffer(m, col, offset_bytes=5 * 8)  # column 5
    got = tb.pack().view(np.float64)
    assert np.array_equal(got, m[:, 5])


def test_unpack_roundtrip_column():
    m = np.zeros((8, 8))
    col = Vector(8, 1, 8, DOUBLE)
    tb = TypedBuffer(m, col, offset_bytes=3 * 8)
    data = np.arange(8, dtype=np.float64)
    tb.unpack(data.view(np.uint8))
    assert np.array_equal(m[:, 3], data)
    assert m[:, :3].sum() == 0 and m[:, 4:].sum() == 0


def test_pack_indexed_definition_order():
    buf = np.arange(10, dtype=np.float64)
    dt = Indexed([2, 1], [6, 1], DOUBLE)
    tb = TypedBuffer(buf, dt)
    got = tb.pack().view(np.float64)
    assert got.tolist() == [6.0, 7.0, 1.0]


def test_pack_subarray_2d():
    m = np.arange(36, dtype=np.float64).reshape(6, 6)
    dt = Subarray([6, 6], [3, 2], [2, 1], DOUBLE)
    tb = TypedBuffer(m, dt)
    got = tb.pack().view(np.float64)
    assert np.array_equal(got, m[2:5, 1:3].reshape(-1))


def test_pack_subarray_3d_face():
    a = np.arange(5 * 4 * 3, dtype=np.float64).reshape(5, 4, 3)
    dt = Subarray([5, 4, 3], [5, 4, 1], [0, 0, 2], DOUBLE)
    got = TypedBuffer(a, dt).pack().view(np.float64)
    assert np.array_equal(got, a[:, :, 2].reshape(-1))


def test_pack_struct_mixed_granularity():
    # int (4 bytes) + double (8 bytes) with a hole => granularity 4
    raw = np.zeros(16, dtype=np.uint8)
    raw[:4] = np.array([1, 0, 0, 0], dtype=np.uint8)
    raw[8:16] = np.frombuffer(np.float64(2.5).tobytes(), dtype=np.uint8)
    dt = Struct([1, 1], [0, 8], [INT, DOUBLE])
    tb = TypedBuffer(raw, dt)
    packed = tb.pack()
    assert packed[:4].view(np.int32)[0] == 1
    assert packed[4:12].view(np.float64)[0] == 2.5


def test_unpack_size_mismatch_rejected():
    buf = np.zeros(8, dtype=np.float64)
    tb = TypedBuffer(buf, DOUBLE, count=8)
    with pytest.raises(DatatypeError):
        tb.unpack(np.zeros(9, dtype=np.uint8))


def test_buffer_too_small_rejected():
    buf = np.zeros(4, dtype=np.float64)
    with pytest.raises(DatatypeError):
        TypedBuffer(buf, DOUBLE, count=5)
    with pytest.raises(DatatypeError):
        TypedBuffer(buf, DOUBLE, count=4, offset_bytes=8)


def test_zero_count_buffer():
    buf = np.zeros(4, dtype=np.float64)
    tb = TypedBuffer(buf, DOUBLE, count=0)
    assert tb.nbytes == 0
    assert tb.pack().size == 0
    tb.unpack(np.empty(0, dtype=np.uint8))  # no-op


def test_non_contiguous_numpy_buffer_rejected():
    m = np.zeros((4, 4))
    with pytest.raises(DatatypeError):
        TypedBuffer(m[:, 1], DOUBLE, count=4)


def test_transpose_send_recv_equivalence():
    """Sender packs column-major, receiver stores contiguously: transpose."""
    n = 12
    src = np.random.default_rng(1).random((n, n))
    dst = np.zeros((n, n))
    # one column at a time, like the transpose benchmark
    for j in range(n):
        col = Vector(n, 1, n, DOUBLE)
        sender = TypedBuffer(src, col, offset_bytes=j * 8)
        wire = sender.pack()
        receiver = TypedBuffer(dst, DOUBLE, count=n, offset_bytes=j * n * 8)
        receiver.unpack(wire)
    assert np.array_equal(dst, src.T)


# -- property-based roundtrips -------------------------------------------


@st.composite
def indexed_layout(draw):
    nblocks = draw(st.integers(1, 12))
    lens = draw(st.lists(st.integers(1, 5), min_size=nblocks, max_size=nblocks))
    # non-overlapping displacements with random gaps, then shuffled
    gaps = draw(st.lists(st.integers(0, 4), min_size=nblocks, max_size=nblocks))
    disps = []
    pos = 0
    for length, gap in zip(lens, gaps):
        pos += gap
        disps.append(pos)
        pos += length
    order = draw(st.permutations(range(nblocks)))
    return [lens[i] for i in order], [disps[i] for i in order], pos


@given(indexed_layout(), st.randoms(use_true_random=False))
@settings(max_examples=150)
def test_indexed_pack_unpack_roundtrip(layout, rnd):
    lens, disps, total = layout
    dt = Indexed(lens, disps, DOUBLE)
    src = np.arange(total + 1, dtype=np.float64)
    packed = TypedBuffer(src, dt).pack()
    dst = np.full(total + 1, -1.0)
    TypedBuffer(dst, dt).unpack(packed)
    # every selected element landed back in place
    sel = np.zeros(total + 1, dtype=bool)
    for length, disp in zip(lens, disps):
        sel[disp : disp + length] = True
    assert np.array_equal(dst[sel], src[sel])
    assert np.all(dst[~sel] == -1.0)


@given(
    st.integers(1, 10),  # count
    st.integers(1, 4),   # blocklength
    st.integers(0, 6),   # extra stride
)
@settings(max_examples=100)
def test_vector_pack_matches_bruteforce(count, blocklength, extra):
    stride = blocklength + extra
    dt = Vector(count, blocklength, stride, DOUBLE)
    n = (count - 1) * stride + blocklength
    src = np.arange(n, dtype=np.float64)
    got = TypedBuffer(src, dt).pack().view(np.float64)
    expect = np.concatenate(
        [src[i * stride : i * stride + blocklength] for i in range(count)]
    )
    assert np.array_equal(got, expect)


@given(st.integers(1, 6), st.integers(1, 6), st.data())
@settings(max_examples=80)
def test_subarray_pack_matches_numpy_slice(rows, cols, data):
    sub_r = data.draw(st.integers(1, rows))
    sub_c = data.draw(st.integers(1, cols))
    start_r = data.draw(st.integers(0, rows - sub_r))
    start_c = data.draw(st.integers(0, cols - sub_c))
    m = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
    dt = Subarray([rows, cols], [sub_r, sub_c], [start_r, start_c], DOUBLE)
    got = TypedBuffer(m, dt).pack().view(np.float64)
    assert np.array_equal(got, m[start_r : start_r + sub_r, start_c : start_c + sub_c].reshape(-1))
