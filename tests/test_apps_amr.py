"""Tests for the FLASH-style AMR skew workload (paper section 7)."""

import numpy as np
import pytest

from repro.apps.amr_skew import AMRConfig, AMRDriver, amr_skew_benchmark, morton_order
from repro.mpi import Cluster, MPIConfig
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def test_morton_order_is_permutation():
    for n in (1, 2, 4, 8, 16):
        order = morton_order(n)
        assert sorted(order.tolist()) == list(range(n * n))


def test_morton_locality():
    """Consecutive Morton blocks are spatially close (within a few cells)."""
    n = 8
    order = morton_order(n)
    x, y = order % n, order // n
    dist = np.abs(np.diff(x)) + np.abs(np.diff(y))
    assert dist.max() <= n  # never a full-domain jump
    assert np.mean(dist) < 2.5


def test_levels_follow_feature():
    cluster = Cluster(2, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)

    def main(comm):
        d = AMRDriver(comm, AMRConfig(blocks_per_dim=8, max_level=2))
        levels = d.compute_levels(0)
        # blocks near the feature are refined, far corners are not
        pos = d.feature_position(0)
        dist = np.linalg.norm(d.centers - pos, axis=1)
        assert levels[np.argmin(dist)] == 2
        assert levels[np.argmax(dist)] == 0
        yield from comm.barrier()
        return True

    assert all(cluster.run(main))


def test_balanced_owners_even_work():
    cluster = Cluster(4, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)

    def main(comm):
        d = AMRDriver(comm, AMRConfig(blocks_per_dim=8, max_level=2))
        levels = d.compute_levels(1)
        owners = d.balanced_owners(levels)
        work = d.block_cells(levels)
        per_rank = np.array([work[owners == r].sum() for r in range(comm.size)])
        yield from comm.barrier()
        return per_rank

    per_rank = cluster.run(main)[0]
    assert per_rank.sum() > 0
    # no rank more than 2x the average
    assert per_rank.max() < 2.0 * per_rank.mean()
    # every rank owns something
    assert per_rank.min() > 0


@pytest.mark.parametrize("nprocs", [2, 4, 8])
def test_workload_runs_and_data_survives_migration(nprocs):
    r = amr_skew_benchmark(nprocs, MPIConfig.optimized(), cost=QUIET)
    assert r.correct
    assert r.migrated_cells > 0  # the moving feature forces migrations
    assert r.time_per_step > 0


def test_optimized_config_not_slower():
    params = AMRConfig(blocks_per_dim=8, steps=4)
    rb = amr_skew_benchmark(16, MPIConfig.baseline(), params=params, cost=QUIET)
    ro = amr_skew_benchmark(16, MPIConfig.optimized(), params=params, cost=QUIET)
    assert rb.correct and ro.correct
    assert ro.time_per_step < rb.time_per_step


def test_determinism():
    params = AMRConfig(steps=3)
    a = amr_skew_benchmark(4, MPIConfig.optimized(), params=params, seed=5)
    b = amr_skew_benchmark(4, MPIConfig.optimized(), params=params, seed=5)
    assert a.time_per_step == b.time_per_step
    assert a.migrated_cells == b.migrated_cells
