"""Tests for the CFG/fixpoint dataflow analyzer (REQ/BUF/SPMD/PLAN)."""

import ast
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analyze.dataflow import (
    analyze_file,
    analyze_paths,
    analyze_source,
    build_cfg,
    extract_plans,
    liveness,
    reaching_definitions,
)
from repro.analyze.emit import to_json, to_sarif
from repro.analyze.findings import Report

TESTS = Path(__file__).parent
REPO = TESTS.parent
FIXTURES = TESTS / "fixtures"


def rules_of(source):
    report = analyze_source(textwrap.dedent(source))
    return sorted(f.rule for f in report)


def _cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def _node_matching(cfg, fragment):
    for node in cfg:
        if node.stmt is None:
            continue
        # match only the header line so compound statements do not
        # swallow fragments of their own bodies
        if fragment in ast.unparse(node.stmt).splitlines()[0]:
            return node
    raise AssertionError(f"no CFG node matching {fragment!r}")


# -- CFG construction ---------------------------------------------------------

def test_cfg_if_else_joins_at_following_statement():
    cfg = _cfg_of("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
    """)
    ret = _node_matching(cfg, "return a")
    then = _node_matching(cfg, "a = 1")
    other = _node_matching(cfg, "a = 2")
    assert ret.index in then.succ
    assert ret.index in other.succ


def test_cfg_while_has_back_edge_and_exit_edge():
    cfg = _cfg_of("""
        def f(n):
            i = 0
            while i < n:
                i += 1
            return i
    """)
    head = _node_matching(cfg, "while i < n")
    body = _node_matching(cfg, "i += 1")
    assert head.index in body.succ                      # back edge
    ret = _node_matching(cfg, "return i")
    # loop exit flows (through the join anchor) to the return
    join = [cfg.nodes[s] for s in head.succ if cfg.nodes[s].kind == "join"]
    assert join and ret.index in join[0].succ


def test_cfg_break_targets_loop_join():
    cfg = _cfg_of("""
        def f(items):
            for x in items:
                if x:
                    break
            return 1
    """)
    brk = next(n for n in cfg if isinstance(n.stmt, ast.Break))
    assert len(brk.succ) == 1
    assert cfg.nodes[brk.succ[0]].kind == "join"


def test_cfg_return_routes_through_finally():
    cfg = _cfg_of("""
        def f(req):
            try:
                return 1
            finally:
                req.close()
    """)
    ret = next(n for n in cfg if isinstance(n.stmt, ast.Return))
    succ_texts = [ast.unparse(cfg.nodes[s].stmt) for s in ret.succ
                  if cfg.nodes[s].stmt is not None]
    assert any("req.close" in t for t in succ_texts)


def test_cfg_rpo_starts_at_entry_covers_all():
    cfg = _cfg_of("""
        def f(x):
            while x:
                if x > 2:
                    continue
                x -= 1
            return x
    """)
    order = cfg.rpo()
    assert order[0] == cfg.entry.index
    assert sorted(order) == list(range(len(cfg)))


# -- the fixpoint engine ------------------------------------------------------

def test_liveness_variable_dies_after_last_use():
    cfg = _cfg_of("""
        def f(a):
            b = a + 1
            c = b * 2
            return c
    """)
    use_b = _node_matching(cfg, "c = b * 2")
    ret = _node_matching(cfg, "return c")
    live = liveness(cfg)
    assert "b" in live.at_entry(use_b.index)
    assert "b" not in live.at_entry(ret.index)
    assert "c" in live.at_entry(ret.index)


def test_reaching_definitions_kill_replaces_fact():
    cfg = _cfg_of("""
        def f():
            x = 1
            x = 2
            return x
    """)
    first = _node_matching(cfg, "x = 1")
    second = _node_matching(cfg, "x = 2")
    ret = _node_matching(cfg, "return x")
    gen = {first.index: {("x", first.index)},
           second.index: {("x", second.index)}}
    sol = reaching_definitions(
        cfg, gen, lambda idx, facts:
        {f for f in facts if idx in gen and f[0] == "x"})
    assert sol.at_entry(ret.index) == {("x", second.index)}


# -- REQ1xx: request lifetime -------------------------------------------------

def test_req101_wait_missing_on_one_branch():
    assert rules_of("""
        def f(comm, data):
            req = yield from comm.isend(data, 1)
            if comm.size > 2:
                return
            yield from req.wait()
    """) == ["REQ101"]


def test_clean_when_every_path_waits():
    assert rules_of("""
        def f(comm, data):
            req = yield from comm.isend(data, 1)
            if comm.size > 2:
                yield from req.wait()
                return
            yield from req.wait()
    """) == []


def test_clean_try_finally_wait():
    assert rules_of("""
        def f(comm, data, risky):
            req = yield from comm.isend(data, 1)
            try:
                risky()
            finally:
                yield from req.wait()
    """) == []


def test_req102_loop_carried_rebinding():
    report = analyze_source(textwrap.dedent("""
        def f(comm, bufs):
            req = None
            for peer, buf in enumerate(bufs):
                req = comm.irecv(buf, peer)
            yield from req.wait()
    """))
    assert [f.rule for f in report] == ["REQ102"]
    assert "previous loop iteration" in list(report)[0].message


def test_clean_loop_that_waits_each_iteration():
    assert rules_of("""
        def f(comm, bufs):
            for peer, buf in enumerate(bufs):
                req = comm.irecv(buf, peer)
                yield from req.wait()
    """) == []


def test_waitall_completes_collected_requests():
    assert rules_of("""
        def f(comm, bufs, Request):
            reqs = []
            for peer, buf in enumerate(bufs):
                reqs.append(comm.irecv(buf, peer))
            yield from Request.waitall(reqs)
    """) == []


def test_req103_undriven_generator():
    assert rules_of("""
        def f(comm):
            g = comm.barrier()
            yield from comm.allreduce(1.0)
    """) == ["REQ103"]


def test_yield_from_helper_that_waits_is_clean():
    assert rules_of("""
        def _finish(comm, req):
            yield from req.wait()

        def f(comm, data):
            req = yield from comm.isend(data, 1)
            yield from _finish(comm, req)
    """) == []


def test_helper_that_does_not_wait_leaves_req101():
    assert rules_of("""
        def _log(comm, req):
            print(req)

        def f(comm, data):
            req = yield from comm.isend(data, 1)
            _log(comm, req)
    """) == ["REQ101"]


# -- BUF1xx: buffer aliasing --------------------------------------------------

def test_buf101_write_between_isend_and_wait():
    assert rules_of("""
        def f(comm, partner):
            import numpy as np
            payload = np.arange(8.0)
            req = yield from comm.isend(payload, partner)
            payload[:] = 0.0
            yield from req.wait()
    """) == ["BUF101"]


def test_buf102_read_before_recv_completes():
    assert rules_of("""
        def f(comm, partner):
            import numpy as np
            inbox = np.zeros(8)
            req = comm.irecv(inbox, partner)
            total = float(inbox.sum())
            yield from req.wait()
            return total
    """) == ["BUF102"]


def test_clean_read_after_recv_wait():
    assert rules_of("""
        def f(comm, partner):
            import numpy as np
            inbox = np.zeros(8)
            req = comm.irecv(inbox, partner)
            yield from req.wait()
            return float(inbox.sum())
    """) == []


# -- SPMD1xx: rank divergence -------------------------------------------------

def test_spmd101_unmatched_collective_under_rank_branch():
    assert rules_of("""
        def f(comm):
            if comm.rank == 0:
                yield from comm.barrier()
    """) == ["SPMD101"]


def test_spmd101_taint_flows_through_assignments():
    assert rules_of("""
        def f(comm):
            r = comm.rank
            is_root = r == 0
            if is_root:
                yield from comm.barrier()
    """) == ["SPMD101"]


def test_spmd101_helper_collective_summary():
    assert rules_of("""
        def _sync(comm):
            yield from comm.barrier()

        def f(comm):
            if comm.rank == 0:
                yield from _sync(comm)
    """) == ["SPMD101"]


def test_spmd_root_vs_nonroot_idiom_is_clean():
    # the other branch performs the same collective: all ranks enter it
    assert rules_of("""
        def f(comm, send, recv, counts, root):
            if comm.rank == root:
                yield from comm.gatherv(send, recv, counts, root=root)
            else:
                yield from comm.gatherv(send, root=root)
    """) == []


def test_spmd_root_exit_with_matching_fallthrough_is_clean():
    assert rules_of("""
        def f(comm, send, recv, counts):
            if comm.rank == 0:
                yield from comm.gatherv(send, recv, counts)
                return recv
            yield from comm.gatherv(send)
            return None
    """) == []


def test_spmd102_early_exit_before_collective():
    assert rules_of("""
        def f(comm, data):
            if comm.rank % 2:
                return None
            total = yield from comm.allreduce(float(len(data)))
            return total
    """) == ["SPMD102"]


def test_spmd_split_subcommunicator_idiom_is_clean():
    assert rules_of("""
        def f(comm):
            sub = yield from comm.split(color=0 if comm.rank < 2 else None)
            if sub is None:
                return None
            s = yield from sub.allreduce(1)
            return s
    """) == []


# -- PLAN1xx: static communication plans --------------------------------------

def _plans_of(source):
    tree = ast.parse(textwrap.dedent(source))
    plans, report = extract_plans(tree, "<test>", Report())
    return plans, report


def test_plan_outlier_counts_predict_policy_split():
    plans, report = _plans_of("""
        import numpy as np

        COUNTS = [4, 4, 4, 4096, 4, 4, 4, 4]

        def main(comm, send):
            recv = np.zeros(4124)
            yield from comm.allgatherv(send, recv, COUNTS)
    """)
    assert [f.rule for f in report] == ["PLAN102"]
    (plan,) = [p for p in plans if p.collective == "allgatherv"]
    assert plan.profile == "outlier"
    assert plan.decisions["mpich"] == "ring"
    assert plan.decisions["adaptive"] != "ring"


def test_plan_sparse_counts():
    plans, report = _plans_of("""
        import numpy as np

        def main(comm, send):
            recv = np.zeros(6)
            yield from comm.gatherv(send, recv, [0, 0, 6, 0, 0, 0, 0, 0])
    """)
    assert [f.rule for f in report] == ["PLAN101"]
    (plan,) = plans
    assert plan.profile == "sparse"
    assert plan.total_bytes == 6 * 8


def test_plan_uniform_counts_are_silent():
    plans, report = _plans_of("""
        import numpy as np

        def main(comm, send):
            recv = np.zeros(32)
            yield from comm.allgatherv(send, recv, [8] * 4)
    """)
    assert report.ok
    (plan,) = plans
    assert plan.profile == "uniform"
    assert plan.volumes == [64, 64, 64, 64]


def test_plan_dynamic_counts_are_skipped():
    plans, report = _plans_of("""
        def main(comm, send, recv, counts):
            yield from comm.allgatherv(send, recv, counts)
    """)
    assert plans == [] and report.ok


def test_plan_low_density_datatype():
    plans, report = _plans_of("""
        from repro.datatypes.typemap import DOUBLE, Vector

        def main(comm, column, partner):
            dtype = Vector(count=256, blocklength=1, stride=64, base=DOUBLE)
            req = yield from comm.isend(column, partner, datatype=dtype)
            yield from req.wait()
    """)
    assert [f.rule for f in report] == ["PLAN103"]


def test_plan_to_dict_is_json_serialisable():
    plans, _ = _plans_of("""
        import numpy as np

        def main(comm, send):
            recv = np.zeros(32)
            yield from comm.allgatherv(send, recv, [8] * 4)
    """)
    doc = json.loads(json.dumps([p.to_dict() for p in plans]))
    assert doc[0]["collective"] == "allgatherv"
    assert doc[0]["profile"] == "uniform"


# -- suppressions -------------------------------------------------------------

def test_inline_suppression_silences_one_rule():
    assert rules_of("""
        def f(comm):
            if comm.rank == 0:
                yield from comm.barrier()  # analyze: ignore[SPMD101]
    """) == []


def test_standalone_comment_suppresses_next_line():
    assert rules_of("""
        def f(comm, data):
            # justified  # analyze: ignore[REQ101]
            req = yield from comm.isend(data, 1)
    """) == []


def test_bare_ignore_suppresses_everything_on_line():
    assert rules_of("""
        def f(comm):
            if comm.rank == 0:
                yield from comm.barrier()  # analyze: ignore
    """) == []


def test_suppression_of_other_code_does_not_silence():
    assert rules_of("""
        def f(comm):
            if comm.rank == 0:
                yield from comm.barrier()  # analyze: ignore[REQ101]
    """) == ["SPMD101"]


# -- fixtures pinned ----------------------------------------------------------

FIXTURE_EXPECTATIONS = {
    "broken_req.py": ["REQ101", "REQ102", "REQ103"],
    "broken_buf.py": ["BUF101", "BUF102"],
    "broken_spmd.py": ["SPMD101", "SPMD102"],
    "broken_plan.py": ["PLAN101", "PLAN102", "PLAN103"],
}


@pytest.mark.parametrize("name,expected",
                         sorted(FIXTURE_EXPECTATIONS.items()))
def test_fixture_findings_pinned(name, expected):
    report = analyze_file(FIXTURES / name)
    assert sorted(f.rule for f in report) == expected


def test_fixture_directory_excluded_from_tree_scans():
    report, _plans = analyze_paths([TESTS])
    assert not any("fixtures" in (f.location or "") for f in report)


# -- emitters -----------------------------------------------------------------

def test_json_emitter_schema_and_summary():
    report = Report()
    plans = []
    analyze_file(FIXTURES / "broken_plan.py", report, plans)
    doc = json.loads(to_json(report, plans))
    assert doc["schema"] == "repro-analyze/1"
    assert doc["summary"]["warning"] == 3
    assert doc["summary"]["ok"] is False
    assert {p["collective"] for p in doc["plans"]} >= {"gatherv",
                                                       "allgatherv"}


def test_sarif_emitter_locations_and_levels():
    report = analyze_file(FIXTURES / "broken_req.py")
    doc = json.loads(to_sarif(report))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert rule_ids == {"REQ101", "REQ102", "REQ103"}
    for result in run["results"]:
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("broken_req.py")
        assert loc["region"]["startLine"] > 0


# -- shipped tree stays clean -------------------------------------------------

def test_src_and_examples_dataflow_clean():
    report, _plans = analyze_paths([REPO / "src", REPO / "examples"])
    assert report.ok, "\n" + "\n".join(str(f) for f in report)


def test_tests_tree_dataflow_clean():
    report, _plans = analyze_paths([TESTS])
    assert report.ok, "\n" + "\n".join(str(f) for f in report)


# -- CLI ----------------------------------------------------------------------

def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.analyze", *argv],
        capture_output=True, text=True, cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_dataflow_sarif_on_broken_fixture():
    proc = _run_cli("--dataflow", "--format", "sarif",
                    str(FIXTURES / "broken_spmd.py"))
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    ids = {r["ruleId"] for r in doc["runs"][0]["results"]}
    assert ids == {"SPMD101", "SPMD102"}


def test_cli_dataflow_output_file(tmp_path):
    out = tmp_path / "findings.json"
    proc = _run_cli("--dataflow", "--format", "json", "-o", str(out),
                    str(FIXTURES / "broken_buf.py"))
    assert proc.returncode == 1
    doc = json.loads(out.read_text())
    assert {f["rule"] for f in doc["findings"]} == {"BUF101", "BUF102"}


def test_cli_dataflow_clean_file_exits_zero(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text(
        "def f(comm):\n"
        "    yield from comm.barrier()\n"
    )
    proc = _run_cli("--dataflow", str(clean))
    assert proc.returncode == 0
