"""Tests for gatherv, scatterv, allgather, alltoall."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


@pytest.mark.parametrize("n,root", [(1, 0), (3, 0), (4, 2), (6, 5)])
def test_gatherv(n, root):
    cluster = make_cluster(n)
    counts = [(r % 3) + 1 for r in range(n)]
    total = sum(counts)

    def main(comm):
        send = np.full(counts[comm.rank], float(comm.rank))
        if comm.rank == root:
            recv = np.zeros(total)
            yield from comm.gatherv(send, recv, counts, root=root)
            return recv
        result = yield from comm.gatherv(send, root=root)
        return result

    results = cluster.run(main)
    expect = np.concatenate([np.full(c, float(r)) for r, c in enumerate(counts)])
    assert np.array_equal(results[root], expect)


def test_gatherv_with_zero_counts():
    n = 4
    cluster = make_cluster(n)
    counts = [2, 0, 3, 0]

    def main(comm):
        send = np.full(counts[comm.rank], float(comm.rank))
        if comm.rank == 0:
            recv = np.zeros(5)
            # sparse counts are the point  # analyze: ignore[PLAN101]
            yield from comm.gatherv(send, recv, counts)
            return recv
        yield from comm.gatherv(send)
        return None

    got = cluster.run(main)[0]
    assert got.tolist() == [0.0, 0.0, 2.0, 2.0, 2.0]


def test_gatherv_root_missing_args():
    cluster = make_cluster(2)

    def main(comm):
        yield from comm.gatherv(np.zeros(2))

    with pytest.raises(Exception):
        cluster.run(main)


@pytest.mark.parametrize("n,root", [(1, 0), (3, 1), (5, 0)])
def test_scatterv(n, root):
    cluster = make_cluster(n)
    counts = [r + 1 for r in range(n)]
    total = sum(counts)

    def main(comm):
        recv = np.zeros(counts[comm.rank])
        if comm.rank == root:
            send = np.arange(total, dtype=np.float64)
            yield from comm.scatterv(send, counts, recvbuf=recv, root=root)
        else:
            yield from comm.scatterv(recvbuf=recv, root=root)
        return recv

    results = cluster.run(main)
    displs = np.concatenate(([0], np.cumsum(counts[:-1])))
    for rank, r in enumerate(results):
        expect = np.arange(displs[rank], displs[rank] + counts[rank], dtype=np.float64)
        assert np.array_equal(r, expect)


def test_scatterv_gatherv_roundtrip():
    n = 4
    cluster = make_cluster(n)
    counts = [3, 1, 4, 1]
    total = sum(counts)

    def main(comm):
        mine = np.zeros(counts[comm.rank])
        if comm.rank == 0:
            data = np.arange(total, dtype=np.float64) * 2
            yield from comm.scatterv(data, counts, recvbuf=mine)
            back = np.zeros(total)
            yield from comm.gatherv(mine, back, counts)
            return back
        yield from comm.scatterv(recvbuf=mine)
        yield from comm.gatherv(mine)
        return None

    got = cluster.run(main)[0]
    assert np.array_equal(got, np.arange(total, dtype=np.float64) * 2)


@pytest.mark.parametrize("n", [1, 2, 4, 5, 8])
def test_allgather_uniform(n):
    cluster = make_cluster(n)

    def main(comm):
        send = np.full(3, float(comm.rank))
        recv = np.zeros(3 * n)
        yield from comm.allgather(send, recv)
        return recv

    expect = np.repeat(np.arange(n, dtype=np.float64), 3)
    for r in cluster.run(main):
        assert np.array_equal(r, expect)


@pytest.mark.parametrize("n", [1, 2, 4, 8, 3, 5, 6])
def test_alltoall_uniform(n):
    cluster = make_cluster(n)
    count = 2

    def main(comm):
        send = np.concatenate(
            [np.full(count, comm.rank * 100.0 + dst) for dst in range(n)]
        )
        recv = np.zeros(n * count)
        yield from comm.alltoall(send, recv, count)
        return recv

    results = cluster.run(main)
    for rank, r in enumerate(results):
        expect = np.concatenate(
            [np.full(count, src * 100.0 + rank) for src in range(n)]
        )
        assert np.array_equal(r, expect), rank


def test_alltoall_buffer_size_validated():
    cluster = make_cluster(2)

    def main(comm):
        yield from comm.alltoall(np.zeros(2), np.zeros(2), count=2)

    with pytest.raises(Exception):
        cluster.run(main)
