"""Tests for the 3-D Laplacian multigrid application driver (small grids;
the full 100^3 runs live in benchmarks/test_fig17_multigrid.py)."""

import pytest

from repro.apps.laplacian3d import laplacian3d_benchmark, laplacian3d_solve
from repro.mpi import MPIConfig
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)
GRID = (16, 16, 16)


def test_solver_converges():
    r = laplacian3d_benchmark(4, "MVAPICH2-New", grid=GRID, levels=2,
                              cost=QUIET, rtol=1e-6, max_cycles=30)
    assert r.converged
    assert r.residual_reduction < 1e-6
    assert r.execution_time > 0


def test_three_implementations_do_identical_numerics():
    results = [
        laplacian3d_benchmark(4, impl, grid=GRID, levels=2, cost=QUIET,
                              fixed_cycles=3)
        for impl in ("hand-tuned", "MVAPICH2-0.9.5", "MVAPICH2-New")
    ]
    reductions = {r.residual_reduction for r in results}
    # bitwise-identical numerics across communication paths
    assert len({f"{x:.15e}" for x in reductions}) == 1
    # and every run did exactly the fixed work
    assert all(r.cycles == 3 for r in results)


def test_fixed_cycles_mode_reports_reduction():
    r = laplacian3d_solve(2, "datatype", MPIConfig.optimized(), grid=GRID,
                          levels=2, cost=QUIET, fixed_cycles=2)
    assert 0 < r.residual_reduction < 1.0
    assert r.cycles == 2


def test_unknown_implementation_rejected():
    with pytest.raises(ValueError):
        laplacian3d_benchmark(2, "OpenMPI-9000", grid=GRID)


def test_deterministic_across_runs():
    a = laplacian3d_benchmark(4, "MVAPICH2-New", grid=GRID, levels=2,
                              fixed_cycles=2, seed=3)
    b = laplacian3d_benchmark(4, "MVAPICH2-New", grid=GRID, levels=2,
                              fixed_cycles=2, seed=3)
    assert a.execution_time == b.execution_time


def test_baseline_not_faster_than_optimized():
    base = laplacian3d_benchmark(8, "MVAPICH2-0.9.5", grid=GRID, levels=2,
                                 cost=QUIET, fixed_cycles=2)
    opt = laplacian3d_benchmark(8, "MVAPICH2-New", grid=GRID, levels=2,
                                cost=QUIET, fixed_cycles=2)
    assert opt.execution_time <= base.execution_time
