"""Tests for the MPI-IO layer (file views, independent and collective IO)."""

import numpy as np
import pytest

from repro.datatypes import DOUBLE, Vector
from repro.mpi import Cluster, MPIConfig, MPIError
from repro.mpi.io import File, _SimFileSystem
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def file_bytes(cluster, name):
    return _SimFileSystem.of(cluster).files[name]


def test_write_at_and_read_at():
    cluster = make_cluster(4)

    def main(comm):
        fh = yield from File.open(comm, "data.bin")
        payload = np.full(8, float(comm.rank))
        yield from fh.write_at(comm.rank * 64, payload)
        yield from fh.close()
        fh2 = yield from File.open(comm, "data.bin")
        back = np.zeros(8)
        yield from fh2.read_at(comm.rank * 64, back)
        yield from fh2.close()
        return back

    results = cluster.run(main)
    for rank, back in enumerate(results):
        assert np.all(back == float(rank))


@pytest.mark.parametrize("collective", [False, True])
def test_interleaved_view_roundtrip(collective):
    """The mpi4py tutorial pattern: rank r writes every size-th double
    starting at r; reading the file back serially shows the interleave."""
    n = 4
    count = 10
    cluster = make_cluster(n)

    def main(comm):
        fh = yield from File.open(comm, "noncontig.bin")
        filetype = Vector(count, 1, comm.size, DOUBLE)
        fh.set_view(comm.rank * 8, filetype)
        payload = np.full(count, float(comm.rank))
        if collective:
            yield from fh.write_all(payload)
        else:
            yield from fh.write(payload)
        yield from fh.close()
        return None

    cluster.run(main)
    raw = file_bytes(cluster, "noncontig.bin")[: n * count * 8].view(np.float64)
    expect = np.tile(np.arange(n, dtype=np.float64), count)
    assert np.array_equal(raw, expect)


@pytest.mark.parametrize("collective", [False, True])
def test_interleaved_view_read(collective):
    n = 4
    count = 6
    cluster = make_cluster(n)

    def main(comm):
        fh = yield from File.open(comm, "toread.bin")
        if comm.rank == 0:  # seed the file serially
            yield from fh.write_at(0, np.arange(n * count, dtype=np.float64))
        yield from comm.barrier()
        filetype = Vector(count, 1, comm.size, DOUBLE)
        fh.set_view(comm.rank * 8, filetype)
        back = np.zeros(count)
        if collective:
            yield from fh.read_all(back)
        else:
            yield from fh.read(back)
        yield from fh.close()
        return back

    results = cluster.run(main)
    for rank, back in enumerate(results):
        expect = np.arange(rank, n * count, n, dtype=np.float64)
        assert np.array_equal(back, expect), rank


def test_collective_write_is_cheaper_for_interleaved_views():
    """Two-phase IO turns the op storm into one big op per rank."""

    def run(collective):
        n = 8
        count = 256
        cluster = make_cluster(n)

        def main(comm):
            fh = yield from File.open(comm, "perf.bin")
            filetype = Vector(count, 1, comm.size, DOUBLE)
            fh.set_view(comm.rank * 8, filetype)
            payload = np.full(count, float(comm.rank))
            yield from comm.barrier()
            t0 = comm.engine.now
            if collective:
                yield from fh.write_all(payload)
            else:
                yield from fh.write(payload)
            elapsed = comm.engine.now - t0
            yield from fh.close()
            return elapsed

        elapsed = max(cluster.run(main))
        return elapsed, _SimFileSystem.of(cluster).ops

    t_ind, ops_ind = run(False)
    t_col, ops_col = run(True)
    assert ops_ind == 8 * 256       # one op per tiny block
    assert ops_col <= 8             # one contiguous chunk per rank
    assert t_col < t_ind / 10


def test_contiguous_view_default():
    cluster = make_cluster(2)

    def main(comm):
        fh = yield from File.open(comm, "flat.bin")
        fh.set_view(comm.rank * 80)  # no filetype: contiguous from disp
        yield from fh.write(np.full(10, float(comm.rank + 1)))
        yield from fh.close()
        return None

    cluster.run(main)
    raw = file_bytes(cluster, "flat.bin")[:160].view(np.float64)
    assert np.all(raw[:10] == 1.0) and np.all(raw[10:] == 2.0)


def test_view_payload_mismatch_rejected():
    cluster = make_cluster(1)

    def main(comm):
        fh = yield from File.open(comm, "bad.bin")
        fh.set_view(0, Vector(4, 1, 2, DOUBLE))  # 32-byte filetype
        yield from fh.write(np.zeros(3))         # 24 B: not a whole tile

    with pytest.raises(MPIError):
        cluster.run(main)


def test_closed_file_rejected():
    cluster = make_cluster(1)

    def main(comm):
        fh = yield from File.open(comm, "closed.bin")
        yield from fh.close()
        yield from fh.write_at(0, np.zeros(1))

    with pytest.raises(MPIError):
        cluster.run(main)


def test_negative_displacement_rejected():
    cluster = make_cluster(1)

    def main(comm):
        fh = yield from File.open(comm, "neg.bin")
        fh.set_view(-1)
        yield from comm.barrier()

    with pytest.raises(MPIError):
        cluster.run(main)


def test_collective_read_write_roundtrip_random_views():
    """Write collectively through interleaved views, read back through the
    same views, and verify every rank recovers its own payload."""
    n = 5  # non-power-of-two
    count = 12
    cluster = make_cluster(n)

    def main(comm):
        fh = yield from File.open(comm, "round.bin")
        filetype = Vector(count, 1, comm.size, DOUBLE)
        fh.set_view(comm.rank * 8, filetype)
        payload = np.arange(count, dtype=np.float64) + 100 * comm.rank
        yield from fh.write_all(payload)
        back = np.zeros(count)
        yield from fh.read_all(back)
        yield from fh.close()
        return payload, back

    for payload, back in cluster.run(main):
        assert np.array_equal(payload, back)
