"""Tests for probe/iprobe and Request.waitany."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.mpi.request import Request
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def test_iprobe_sees_pending_message():
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(10), dest=1, tag=3)
            return None
        yield from comm.compute(1.0)  # let the message arrive unexpected
        status = comm.iprobe(source=0, tag=3)
        assert status is not None
        assert status.nbytes == 80 and status.source == 0
        # probing does not consume: the receive still works
        buf = np.zeros(10)
        yield from comm.recv(buf, source=0, tag=3)
        return True

    assert cluster.run(main)[1]


def test_iprobe_returns_none_when_nothing_pending():
    cluster = make_cluster(2)

    def main(comm):
        assert comm.iprobe() is None
        yield from comm.barrier()
        return True

    assert all(cluster.run(main))


def test_blocking_probe_waits_for_message():
    cluster = make_cluster(2)
    times = {}

    def main(comm):
        if comm.rank == 0:
            yield from comm.compute(2.0)
            yield from comm.send(np.zeros(5), dest=1, tag=9)
            return None
        status = yield from comm.probe(source=0, tag=9)
        times["probed"] = comm.engine.now
        buf = np.zeros(5)
        yield from comm.recv(buf, source=0, tag=9)
        return status.nbytes

    results = cluster.run(main)
    assert results[1] == 40
    assert times["probed"] >= 2.0


def test_probe_then_sized_receive():
    """The classic probe idiom: learn the size, then allocate."""
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            n = 123
            yield from comm.send(np.arange(n, dtype=np.float64), dest=1)
            return None
        status = yield from comm.probe(source=0)
        buf = np.zeros(status.nbytes // 8)
        yield from comm.recv(buf, source=0)
        return buf.size, float(buf[-1])

    assert cluster.run(main)[1] == (123, 122.0)


def test_waitany_returns_first_completion():
    cluster = make_cluster(3)

    def main(comm):
        if comm.rank == 0:
            bufs = [np.zeros(4), np.zeros(4)]
            reqs = [comm.irecv(bufs[0], source=1), comm.irecv(bufs[1], source=2)]
            idx, status = yield from Request.waitany(reqs)
            # rank 2 sends first (shorter compute)
            first = (idx, status.source)
            yield from Request.waitall([reqs[1 - idx]])
            return first
        yield from comm.compute(3.0 if comm.rank == 1 else 0.5)
        yield from comm.send(np.zeros(4), dest=0)
        return None

    first = cluster.run(main)[0]
    assert first == (1, 2)


def test_waitany_with_already_done_request():
    cluster = make_cluster(2)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(2), dest=1)
            return None
        buf = np.zeros(2)
        req = comm.irecv(buf, source=0)
        yield from comm.compute(1.0)  # request completes meanwhile
        idx, status = yield from Request.waitany([req])
        return idx

    assert cluster.run(main)[1] == 0


def test_waitany_empty_rejected():
    with pytest.raises(ValueError):
        gen = Request.waitany([])
        next(gen)
