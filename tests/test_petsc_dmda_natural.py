"""Tests for the DMDA global <-> natural ordering scatter."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import DMDA, Layout, Vec
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


@pytest.mark.parametrize("nranks,dims", [(4, (8, 6)), (6, (6, 6)), (4, (4, 4, 4))])
def test_global_to_natural(nranks, dims):
    cluster = make_cluster(nranks)

    def main(comm):
        da = DMDA(comm, dims)
        g = da.create_global_vec()
        # stamp each owned cell with its natural index
        lo, hi = da.owned_box()
        z, y, x = np.meshgrid(
            np.arange(lo[0], hi[0]), np.arange(lo[1], hi[1]),
            np.arange(lo[2], hi[2]), indexing="ij",
        )
        dims3 = da.dims
        natural = (z * dims3[1] + y) * dims3[2] + x
        g.local[:] = natural.reshape(-1).astype(np.float64)
        sc = da.natural_scatter()
        nat = Vec(comm, Layout(comm.size, g.global_size))
        yield from sc.scatter(g, nat)
        return nat.local.copy()

    got = np.concatenate(make_cluster(nranks).run(main))
    # natural ordering: position k holds natural index k
    assert np.array_equal(got, np.arange(got.size, dtype=np.float64))


def test_natural_roundtrip_with_reverse():
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (8, 8))
        g = da.create_global_vec()
        rng = np.random.default_rng(comm.rank)
        g.local[:] = rng.random(g.local_size)
        sc = da.natural_scatter()
        nat = Vec(comm, Layout(comm.size, g.global_size))
        yield from sc.scatter(g, nat)
        back = da.create_global_vec()
        yield from sc.reversed().scatter(nat, back)
        return bool(np.array_equal(g.local, back.local))

    assert all(cluster.run(main))


def test_natural_scatter_with_dof():
    cluster = make_cluster(2)

    def main(comm):
        da = DMDA(comm, (4, 4), dof=2)
        g = da.create_global_vec()
        g.local[:] = np.arange(g.local_size) + 100 * comm.rank
        sc = da.natural_scatter()
        nat = Vec(comm, Layout(comm.size, g.global_size))
        yield from sc.scatter(g, nat)
        return nat.local.copy()

    got = np.concatenate(cluster.run(main))
    # components of one cell stay adjacent in natural order
    assert got.size == 32
    evens = got[0::2]
    odds = got[1::2]
    assert np.all(odds - evens == 1.0)
