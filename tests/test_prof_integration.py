"""Integration tests: Profiler + observer API on real simulated clusters."""

import numpy as np
import pytest

from repro.apps.transpose import column_major_type
from repro.datatypes import TypedBuffer
from repro.mpi import Cluster, MPIConfig, TruncationError
from repro.prof import NULL_PROFILER, Profiler, validate_breakdown
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n, config=None, **kwargs):
    return Cluster(n, config=config or MPIConfig.optimized(), cost=QUIET,
                   heterogeneous=False, **kwargs)


class RecordingObserver:
    """Subscribes to every documented cluster event and logs the order."""

    def __init__(self):
        self.events = []

    def on_send_posted(self, rec):
        self.events.append(("send_posted", rec.src, rec.dst, rec.nbytes))

    def on_recv_posted(self, dst, rrec):
        self.events.append(("recv_posted", dst))

    def on_match(self, rec, rrec):
        self.events.append(("match", rec.src, rec.dst))

    def on_truncation(self, rec, rrec):
        self.events.append(("truncation", rec.nbytes,
                            rrec.tb.nbytes if rrec.tb is not None else 0))

    def on_transfer(self, ev):
        self.events.append(("transfer", ev.src, ev.dst, ev.nbytes))

    def on_request(self, grank, req):
        self.events.append(("request", grank, req.kind))

    def names(self):
        return [e[0] for e in self.events]


# -- observer-event ordering --------------------------------------------------

def test_event_order_pipelined_noncontiguous_send():
    """A 32 KiB noncontiguous (rendezvous, 2-chunk pipelined) send fires the
    observer events in protocol order: the receive is posted, the send
    enters matching, they bind, then the wire chunks flow."""
    n = 64                                   # 64x64 doubles = 32 KiB
    cluster = make_cluster(2)
    obs = RecordingObserver()
    cluster.add_observer(obs)
    m = np.arange(n * n, dtype=float).reshape(n, n)
    out = np.zeros(n * n)

    def main(comm):
        if comm.rank == 0:
            yield from comm.cpu(1e-6)        # let rank 1 post its receive
            yield from comm.send(TypedBuffer(m, column_major_type(n)), dest=1)
        else:
            yield from comm.recv(out, source=0)

    cluster.run(main)
    names = obs.names()
    # protocol order
    assert names.index("recv_posted") < names.index("send_posted")
    assert names.index("send_posted") < names.index("match")
    assert names.index("match") < names.index("transfer")
    # rendezvous payload above pipeline_chunk flows as two wire chunks
    transfers = [e for e in obs.events if e[0] == "transfer"]
    assert len(transfers) == 2
    assert sum(e[3] for e in transfers) == n * n * 8
    assert ("send_posted", 0, 1, n * n * 8) in obs.events
    # both the send and receive requests were announced
    kinds = {e[2] for e in obs.events if e[0] == "request"}
    assert kinds == {"send", "recv"}
    # functional correctness rode along: column-major send = transpose
    assert np.array_equal(out.reshape(n, n), m.T)


def test_truncation_event_fires_before_error():
    cluster = make_cluster(2)
    obs = RecordingObserver()
    cluster.add_observer(obs)

    def main(comm):
        if comm.rank == 0:
            yield from comm.cpu(1e-6)
            yield from comm.send(np.zeros(100), dest=1)
        else:
            yield from comm.recv(np.zeros(10), source=0)

    with pytest.raises(TruncationError):
        cluster.run(main)
    assert ("truncation", 800, 80) in obs.events
    assert "match" not in obs.names()        # the bind failed


def test_observers_do_not_require_every_hook():
    """An observer implementing a subset of the hooks is fine."""

    class Partial:
        def __init__(self):
            self.transfers = 0

        def on_transfer(self, ev):
            self.transfers += 1

    cluster = make_cluster(2)
    partial = Partial()
    cluster.add_observer(partial)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(4), dest=1)
        else:
            yield from comm.recv(np.zeros(4), source=0)

    cluster.run(main)
    assert partial.transfers == 1


# -- span nesting under forced datatype re-search -----------------------------

def run_transpose(config, n=64):
    cluster = make_cluster(2, config)
    prof = Profiler.attach(cluster)
    m = np.arange(n * n, dtype=float).reshape(n, n)
    out = np.zeros(n * n)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(TypedBuffer(m, column_major_type(n)), dest=1)
        else:
            yield from comm.recv(out, source=0)

    cluster.run(main)
    return prof


def test_span_nesting_under_forced_research():
    """The baseline single-context engine re-searches the datatype; the
    resulting cpu spans nest inside the isend span and the re-search
    metrics fill in."""
    prof = run_transpose(MPIConfig.baseline())
    tracer = prof.tracer
    assert tracer.open_spans() == []
    (isend,) = tracer.by_name("isend")
    assert isend.category == "p2p"
    children = tracer.children_of(isend)
    child_names = {s.name for s in children}
    # the 64x64 transpose type is all single-element blocks: sparse path,
    # so the single-context engine pays look-ahead + re-search + pack
    assert {"lookahead", "search", "pack"} <= child_names
    for child in children:
        assert child.category == "cpu"
        assert child.depth == isend.depth + 1
        assert isend.encloses(child)
    # re-search metrics: >0 re-searches, with recorded walk depths
    snap = prof.snapshot()
    assert snap["repro_research_total"] > 0
    assert snap["repro_research_depth_blocks"]["count"] > 0
    assert snap["repro_research_depth_blocks"]["sum"] > 0
    assert snap["repro_lookahead_sparse_total"] > 0
    assert snap["repro_pack_bytes_total"] == 64 * 64 * 8


def test_dual_context_engine_never_researches():
    prof = run_transpose(MPIConfig.optimized())
    assert "repro_research_total" not in prof.metrics
    assert not prof.tracer.by_name("search")
    snap = prof.snapshot()
    assert snap["repro_pack_stages_total"] >= 2      # still pipelined


def test_receiver_unpack_runs_on_io_lane():
    """A noncontiguous *receive* charges unpack on the receiver's io lane."""
    n = 64
    cluster = make_cluster(2)
    prof = Profiler.attach(cluster)
    m = np.arange(n * n, dtype=float)
    out = np.zeros((n, n))

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(m, dest=1)          # contiguous send
        else:
            yield from comm.recv(TypedBuffer(out, column_major_type(n)),
                                 source=0)

    cluster.run(main)
    unpacks = prof.tracer.by_name("unpack")
    assert unpacks and all(s.track == (1, "io") for s in unpacks)
    snap = prof.snapshot()
    assert snap["repro_unpack_bytes_total"] == n * n * 8
    # contiguous receive of the column type = transpose on the receiver
    assert np.array_equal(out, m.reshape(n, n).T)


# -- breakdown consistency on a real collective -------------------------------

def test_collective_breakdown_sums_within_tolerance():
    n = 8
    counts = [4, 4, 4, 4, 4000, 4, 4, 4]            # one outlier volume
    displs = np.concatenate(([0], np.cumsum(counts[:-1]))).astype(int).tolist()
    total = int(np.sum(counts))
    cluster = make_cluster(n)
    prof = Profiler.attach(cluster)

    def main(comm):
        send = np.full(counts[comm.rank], float(comm.rank + 1))
        recv = np.zeros(total)
        # outlier counts are the point  # analyze: ignore[PLAN102]
        yield from comm.allgatherv(send, recv, counts, displs)
        return recv

    results = cluster.run(main)
    for recv in results:
        assert recv[displs[4]] == 5.0                # payload correct
    rows = prof.breakdown("collective")
    assert len(rows) == n                            # one row per rank
    assert validate_breakdown(rows)                  # sums within 1%
    assert {r["op"] for r in rows} == {"allgatherv"}
    # the collective window covers the whole call on every rank
    for r in rows:
        assert r["elapsed"] > 0
        assert r["wait"] >= 0
    # adaptive selection ran the outlier check and counted it
    snap = prof.snapshot()
    assert snap["repro_outlier_checks_total"] == n
    assert snap["repro_outlier_detected_total"] == n
    assert snap["repro_kselect_calls_total"] >= n
    coll_counter = prof.metrics.counter("repro_collectives_total")
    assert coll_counter.value(labels={"op": "allgatherv"}) == n
    # phase spans nest under their collective span
    phases = prof.tracer.by_category("phase")
    assert phases
    colls = {s.id: s for s in prof.tracer.by_category("collective")}
    assert all(p.parent in colls for p in phases)


def test_transfer_metrics_match_observer_stream():
    cluster = make_cluster(2)
    prof = Profiler.attach(cluster)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(100), dest=1)
        else:
            yield from comm.recv(np.zeros(100), source=0)

    cluster.run(main)
    assert len(prof.transfers) == 1
    snap = prof.snapshot()
    assert snap["repro_transfer_messages_total"] == 1
    assert snap["repro_transfer_bytes_total"] == 800
    assert snap["repro_wire_seconds_total"] > 0
    # the eager send completes before wait; only the receive blocks
    assert snap["repro_request_wait_seconds"]["count"] >= 1
    assert snap["repro_engine_events"] > 0
    assert snap["repro_engine_processes"] > 0


def test_unprofiled_cluster_uses_null_profiler():
    cluster = make_cluster(2)
    assert cluster.profiler is NULL_PROFILER

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(10), dest=1)
        else:
            yield from comm.recv(np.zeros(10), source=0)

    cluster.run(main)                                # no spans, no crash
    assert NULL_PROFILER.snapshot() == {}


def test_shared_registry_across_clusters():
    from repro.prof import MetricsRegistry

    reg = MetricsRegistry()
    for _ in range(2):
        cluster = make_cluster(2)
        Profiler.attach(cluster, registry=reg)

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(np.zeros(10), dest=1)
            else:
                yield from comm.recv(np.zeros(10), source=0)

        cluster.run(main)
    assert reg.counter("repro_send_messages_total").value() == 2


# -- process-wide session -----------------------------------------------------

def test_session_auto_attaches_and_reports():
    from repro.bench.harness import FigureData
    from repro.prof import session

    reg = session.enable()
    try:
        cluster = make_cluster(2)
        assert isinstance(cluster.profiler, Profiler)
        assert cluster.profiler.metrics is reg
        assert session.profilers() == [cluster.profiler]

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(np.zeros(100), dest=1)
            else:
                yield from comm.recv(np.zeros(100), source=0)

        cluster.run(main)
        fig = FigureData("FigX", "demo", ["n", "latency"])
        fig.add_row(2, cluster.elapsed)
        report = session.report()
    finally:
        session.disable()
    assert report["clusters"] == 1
    assert report["metrics"]["repro_send_messages_total"] == 1
    assert "repro_send_messages_total 1" in report["prometheus"]
    # the row delta attributed the send to the row added after it
    (delta,) = report["row_metrics"]["FigX"]
    assert delta["repro_send_messages_total"] == 1
    # p2p-only workloads still produce breakdown rows (fig12 regression)
    assert report["breakdown_rows"] > 0
    assert report["breakdown_valid"] is True
    # once disabled, new clusters are unprofiled again
    assert make_cluster(2).profiler is NULL_PROFILER
