"""Tests for spectrum estimation and the Chebyshev multigrid smoother."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import DMDA, Laplacian, MGSolver, PETScError
from repro.petsc.spectrum import estimate_lambda_max, smoothing_range
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def test_lambda_max_of_2d_laplacian():
    n = 16
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (n, n))
        op = Laplacian(da)
        b = da.create_global_vec()
        lam = yield from estimate_lambda_max(op, b, iterations=30)
        return lam

    lam = cluster.run(main)[0]
    # analytic upper bound (with the boundary modification): < 8/h^2
    h2 = float(n * n)
    assert 0.5 * 8 * h2 < lam <= 8 * h2 * 1.01


def test_power_iteration_converges_from_any_seed():
    cluster = make_cluster(2)

    def main(comm):
        da = DMDA(comm, (12, 12))
        op = Laplacian(da)
        b = da.create_global_vec()
        lams = []
        for seed in (1, 99):
            lam = yield from estimate_lambda_max(op, b, iterations=40, seed=seed)
            lams.append(lam)
        return lams

    lams = cluster.run(main)[0]
    assert lams[0] == pytest.approx(lams[1], rel=0.02)


def test_smoothing_range_brackets_upper_spectrum():
    cluster = make_cluster(2)

    def main(comm):
        da = DMDA(comm, (16, 16))
        op = Laplacian(da)
        b = da.create_global_vec()
        lo, hi = yield from smoothing_range(op, b)
        return lo, hi

    lo, hi = cluster.run(main)[0]
    assert 0 < lo < hi
    assert hi / lo == pytest.approx(10.0 * 1.05, rel=1e-6)


def test_invalid_iterations_rejected():
    cluster = make_cluster(1)

    def main(comm):
        da = DMDA(comm, (8, 8))
        op = Laplacian(da)
        b = da.create_global_vec()
        yield from estimate_lambda_max(op, b, iterations=0)

    with pytest.raises(PETScError):
        cluster.run(main)


def test_mg_with_chebyshev_smoother_converges():
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (32, 32))
        mg = MGSolver(da, nlevels=3, smoother="chebyshev")
        b = da.create_global_vec()
        rng = np.random.default_rng(comm.rank)
        b.local[:] = rng.random(b.local_size)
        x = da.create_global_vec()
        result = yield from mg.solve(b, x, rtol=1e-8, max_cycles=25)
        return result

    result = cluster.run(main)[0]
    assert result.converged, result.residual_norms
    # Chebyshev smoothing should be competitive with Jacobi
    assert result.iterations <= 20


def test_mg_unknown_smoother_rejected():
    cluster = make_cluster(1)

    def main(comm):
        da = DMDA(comm, (8, 8))
        MGSolver(da, nlevels=2, smoother="gauss-seidel")
        yield from comm.barrier()

    with pytest.raises(PETScError):
        cluster.run(main)


def test_chebyshev_vs_jacobi_smoother_both_solve_same_problem():
    def solve(smoother):
        cluster = make_cluster(4)

        def main(comm):
            da = DMDA(comm, (16, 16))
            mg = MGSolver(da, nlevels=2, smoother=smoother)
            b = da.create_global_vec()
            b.local[:] = 1.0
            x = da.create_global_vec()
            result = yield from mg.solve(b, x, rtol=1e-10, max_cycles=40)
            return result.converged, x.local.copy()

        results = cluster.run(main)
        assert all(ok for ok, _ in results)
        return np.concatenate([xs for _, xs in results])

    xa = solve("jacobi")
    xb = solve("chebyshev")
    assert np.allclose(xa, xb, atol=1e-8)
