"""Tests for W-cycles and full multigrid (FMG)."""

import numpy as np
import pytest

from repro.mpi import Cluster, MPIConfig
from repro.petsc import DMDA, MGSolver, PETScError
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def rhs_for(da):
    lo, hi = da.owned_box()
    axes = []
    active = 0
    for d in range(3):
        n = da.dims[d]
        if n > 1:
            active += 1
            centers = (np.arange(lo[d], hi[d]) + 0.5) / n
            axes.append(np.sin(np.pi * centers))
        else:
            axes.append(np.ones(hi[d] - lo[d]))
    u = axes[0][:, None, None] * axes[1][None, :, None] * axes[2][None, None, :]
    return (active * np.pi**2 * u).reshape(-1), u.reshape(-1)


def test_wcycle_contracts_at_least_as_fast_as_vcycle():
    def contraction(cycle):
        cluster = make_cluster(4)

        def main(comm):
            da = DMDA(comm, (32, 32))
            mg = MGSolver(da, nlevels=3)
            b = da.create_global_vec()
            rng = np.random.default_rng(comm.rank)
            b.local[:] = rng.random(b.local_size)
            x = da.create_global_vec()
            op = mg.ops[0]
            r = mg._r[0]
            norms = []
            for _ in range(6):
                yield from op.residual(b, x, r)
                norms.append((yield from r.norm()))
                if cycle == "v":
                    yield from mg.vcycle(0, b, x)
                else:
                    yield from mg.wcycle(0, b, x)
            return norms

        norms = cluster.run(main)[0]
        factors = [b / a for a, b in zip(norms[1:], norms[2:])]
        return float(np.mean(factors))

    fv = contraction("v")
    fw = contraction("w")
    # the fine-grid smoother dominates both factors here; the W-cycle must
    # be comparably healthy, never much worse
    assert fw <= fv + 0.05
    assert fw < 0.3 and fv < 0.3


def test_invalid_gamma_rejected():
    cluster = make_cluster(1)

    def main(comm):
        da = DMDA(comm, (8, 8))
        mg = MGSolver(da, nlevels=2)
        b = da.create_global_vec()
        x = da.create_global_vec()
        yield from mg.cycle(0, b, x, gamma=0)

    with pytest.raises(PETScError):
        cluster.run(main)


@pytest.mark.parametrize("nranks,dims", [(1, (32, 32)), (4, (16, 16, 16))])
def test_fmg_reaches_discretisation_accuracy_in_one_pass(nranks, dims):
    cluster = make_cluster(nranks)

    def main(comm):
        da = DMDA(comm, dims)
        mg = MGSolver(da, nlevels=3)
        b = da.create_global_vec()
        x = da.create_global_vec()
        f, u_exact = rhs_for(da)
        b.local[:] = f
        rnorm = yield from mg.fmg_solve(b, x, cycles_per_level=2)
        err = float(np.max(np.abs(x.local - u_exact))) if x.local_size else 0.0
        err = yield from comm.allreduce(err, op=max)
        b0 = yield from b.norm()
        return rnorm, b0, err

    for rnorm, b0, err in cluster.run(main):
        # algebraic residual well below the data scale (3-D cycles contract
        # at ~0.35, so two cycles per level land around 0.1), and the
        # solution within discretisation error of the manufactured field
        assert rnorm < 0.15 * b0
        assert err < 0.05


def test_fmg_cheaper_than_cold_vcycles():
    """FMG with one cycle per level reaches a residual that cold V-cycling
    needs several cycles to match."""
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (32, 32))
        mg = MGSolver(da, nlevels=3)
        b = da.create_global_vec()
        f, _ = rhs_for(da)
        b.local[:] = f
        x = da.create_global_vec()
        fmg_res = yield from mg.fmg_solve(b, x, cycles_per_level=1)
        # cold start V-cycles
        x2 = da.create_global_vec()
        op = mg.ops[0]
        r = mg._r[0]
        cycles_needed = 0
        for _ in range(10):
            yield from op.residual(b, x2, r)
            n = yield from r.norm()
            if n <= fmg_res:
                break
            yield from mg.vcycle(0, b, x2)
            cycles_needed += 1
        return cycles_needed

    assert cluster.run(main)[0] >= 2
