"""Tests for the Gray-Scott reaction-diffusion application."""

import numpy as np
import pytest

from repro.apps.reaction_diffusion import (
    GrayScottParams,
    gray_scott_benchmark,
)
from repro.mpi import MPIConfig
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)
SMALL = GrayScottParams(grid=(32, 32), steps=10)


def test_pattern_grows_from_seed():
    r = gray_scott_benchmark(4, params=SMALL, cost=QUIET)
    assert r.v_mass > 0.0
    v = r.state.reshape(-1, 2)[:, 1]
    assert v.max() > 0.05       # the v species spreads
    assert v.min() >= -1e-9     # and stays physical
    u = r.state.reshape(-1, 2)[:, 0]
    assert 0.0 <= u.min() and u.max() <= 1.2


def test_backends_and_configs_agree_exactly():
    """The numerics are identical regardless of communication path."""
    ref = None
    for backend in ("datatype", "hand_tuned"):
        for config in (MPIConfig.baseline(), MPIConfig.optimized()):
            r = gray_scott_benchmark(4, backend=backend, config=config,
                                     params=SMALL, cost=QUIET)
            if ref is None:
                ref = r.state
            else:
                assert np.array_equal(r.state, ref), (backend, config.name)


def test_rank_counts_agree():
    """Different decompositions produce the same global state."""
    a = gray_scott_benchmark(1, params=SMALL, cost=QUIET)
    b = gray_scott_benchmark(4, params=SMALL, cost=QUIET)
    # assemble b's state into natural order? Both use the same DMDA ordering
    # only when the proc grid matches, so compare integral quantities:
    assert a.v_mass == pytest.approx(b.v_mass, rel=1e-12)
    va = np.sort(a.state.reshape(-1, 2)[:, 1])
    vb = np.sort(b.state.reshape(-1, 2)[:, 1])
    assert np.allclose(va, vb)


def test_conservation_without_reaction():
    """With F = kappa = 0 and no v, u stays exactly 1 (diffusion of a
    constant on a periodic domain)."""
    params = GrayScottParams(grid=(16, 16), F=0.0, kappa=0.0, steps=3)
    r = gray_scott_benchmark(2, params=params, cost=QUIET)
    u = r.state.reshape(-1, 2)[:, 0]
    # v (and hence u's reaction term) can only have spread `steps` cells
    # from the seeded square; far away u is still exactly 1
    assert np.abs(u[0] - 1.0) < 1e-15
    interior_const = np.abs(u - 1.0) < 1e-12
    assert interior_const.sum() > 0


def test_simulated_time_positive_and_deterministic():
    a = gray_scott_benchmark(4, params=SMALL, seed=9)
    b = gray_scott_benchmark(4, params=SMALL, seed=9)
    assert a.time_per_step == b.time_per_step > 0
