"""Edge-case coverage: rectangular AIJ matrices, 1-D operators, buffer
normalisation errors, collective element-type restrictions."""

import numpy as np
import pytest

from repro.datatypes import DOUBLE, Vector
from repro.mpi import Cluster, MPIConfig, MPIError
from repro.mpi.comm import as_typed
from repro.petsc import CG, DMDA, Laplacian, Layout, PETScError, Vec
from repro.petsc.aij import AIJMat
from repro.util import CostModel

QUIET = CostModel(cpu_noise=0.0)


def make_cluster(n):
    return Cluster(n, config=MPIConfig.optimized(), cost=QUIET, heterogeneous=False)


def test_rectangular_aij_matvec():
    """A 6x4 matrix with distinct row/column layouts."""
    cluster = make_cluster(2)

    def main(comm):
        rows = Layout(comm.size, 6)
        cols = Layout(comm.size, 4)
        A = AIJMat(comm, rows, cols)
        if comm.rank == 0:
            # A[i, j] = 1 if j == i % 4
            for i in range(6):
                A.set_value(i, i % 4, 1.0)
        yield from A.assemble()
        x = Vec(comm, cols)
        start, end = x.owned_range
        x.local[:] = np.arange(start, end, dtype=np.float64) + 1
        y = Vec(comm, rows)
        yield from A.mult(x, y)
        return y.local.copy()

    got = np.concatenate(cluster.run(main))
    assert got.tolist() == [1.0, 2.0, 3.0, 4.0, 1.0, 2.0]


def test_rectangular_aij_layout_mismatch_rejected():
    cluster = make_cluster(2)

    def main(comm):
        rows = Layout(comm.size, 6)
        cols = Layout(comm.size, 4)
        A = AIJMat(comm, rows, cols)
        yield from A.assemble()
        wrong = Vec(comm, rows)  # should be cols-layout
        y = Vec(comm, rows)
        yield from A.mult(wrong, y)

    with pytest.raises(PETScError):
        cluster.run(main)


def test_laplacian_1d():
    cluster = make_cluster(2)
    n = 64

    def main(comm):
        da = DMDA(comm, (n,))
        op = Laplacian(da)
        b = da.create_global_vec()
        x = da.create_global_vec()
        lo, hi = da.owned_box()
        centers = (np.arange(lo[2], hi[2]) + 0.5) / n
        b.local[:] = np.pi**2 * np.sin(np.pi * centers)
        result = yield from CG(op, b, x, rtol=1e-10, maxits=400)
        err = float(np.max(np.abs(x.local - np.sin(np.pi * centers))))
        err = yield from comm.allreduce(err, op=max)
        return result.converged, err

    for converged, err in cluster.run(main):
        assert converged
        assert err < 2e-3  # O(h^2) at h = 1/64


def test_as_typed_partial_extent_rejected():
    arr = np.zeros(10, dtype=np.uint8)
    with pytest.raises(MPIError):
        as_typed(arr, DOUBLE)  # 10 bytes is not a whole number of doubles


def test_as_typed_infers_dtype_and_count():
    arr = np.zeros(5, dtype=np.float64)
    tb = as_typed(arr)
    assert tb.nbytes == 40
    assert tb.count == 5


def test_allgatherv_noncontiguous_element_type_rejected():
    from repro.datatypes import DatatypeError

    cluster = make_cluster(4)

    def main(comm):
        strided = Vector(2, 1, 2, DOUBLE)  # non-contiguous element type
        recv = np.zeros(4 * 4)
        yield from comm.allgatherv(
            np.zeros(4), recv, [2, 2, 2, 2], datatype=strided
        )

    with pytest.raises((MPIError, DatatypeError)):
        cluster.run(main)


def test_dmda_single_cell_per_rank():
    """The degenerate partition: one grid point per rank."""
    cluster = make_cluster(4)

    def main(comm):
        da = DMDA(comm, (2, 2), stencil_width=1)
        v = da.create_global_vec()
        v.local[:] = float(comm.rank + 1)
        larr = da.create_local_array()
        yield from da.global_to_local(v, larr)
        return larr.sum()

    sums = cluster.run(main)
    # each rank sees itself + 2 face neighbours
    for rank, s in enumerate(sums):
        others = {0: (2, 3), 1: (1, 4), 2: (1, 4), 3: (2, 3)}[rank]
        assert s == (rank + 1) + sum(others)


def test_vec_pointwise_mult():
    cluster = make_cluster(2)

    def main(comm):
        lay = Layout(comm.size, 6)
        x = Vec(comm, lay)
        y = Vec(comm, lay)
        w = Vec(comm, lay)
        yield from x.set(3.0)
        yield from y.set(-2.0)
        yield from w.pointwise_mult(x, y)
        return float(w.local[0])

    assert cluster.run(main) == [-6.0, -6.0]
