"""Smoke tests: the fast example scripts must run to completion.

(The heavyweight examples -- reproduce_paper, laplacian3d_solver,
reaction_diffusion_2d -- are exercised through their underlying apps in the
benchmark suite instead.)
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "ghost_exchange_2d.py",
        "nonuniform_collectives.py",
        "trace_communication.py",
        "profile_breakdown.py",
        "critical_path.py",
        "checkpoint_io.py",
        "bratu_nonlinear.py",
    ],
)
def test_example_runs(script, capsys):
    run_example(script)
    out = capsys.readouterr().out
    assert len(out) > 100  # it printed its report
