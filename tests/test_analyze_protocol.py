"""Tests for the cross-rank protocol verifier (MTC101-MTC105)."""

import ast
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze.dataflow import analyze_file, analyze_tree
from repro.analyze.dataflow.driver import (
    _unused_suppression_eligible,
    analyze_source,
    analyze_source_set,
)
from repro.analyze.findings import Report
from repro.analyze.matchgraph import (
    ANY,
    Op,
    check_collectives,
    match_p2p,
    simulate,
    verify_world,
)
from repro.analyze.protocol import WORLD_SIZES, check_module
from repro.analyze.signatures import transfer_verdict
from repro.datatypes import DOUBLE, INT, Contiguous, Vector

TESTS = Path(__file__).parent
REPO = TESTS.parent
FIXTURES = TESTS / "fixtures"


def mtc_rules_of(source, stats=None):
    """MTC findings of one module source, via the verifier directly."""
    report = Report()
    check_module(ast.parse(textwrap.dedent(source)), "t.py", report,
                 stats=stats)
    return sorted(f.rule for f in report)


# -- match-graph core on hand-built traces ------------------------------------


def _op(rank, index, kind, **kw):
    return Op(rank=rank, index=index, kind=kind, **kw)


def test_match_p2p_pairs_send_with_recv():
    traces = {
        0: [_op(0, 0, "send", peer=1, tag=5)],
        1: [_op(1, 0, "recv", peer=0, tag=5)],
    }
    matches, unsent, unrecv = match_p2p(traces)
    assert len(matches) == 1 and not unsent and not unrecv
    assert matches[0][0].rank == 0 and matches[0][1].rank == 1


def test_match_p2p_honours_tag_and_source_wildcards():
    traces = {
        0: [_op(0, 0, "send", peer=1, tag=42)],
        1: [_op(1, 0, "recv", peer=ANY, tag=ANY)],
    }
    matches, unsent, unrecv = match_p2p(traces)
    assert len(matches) == 1 and not unsent and not unrecv


def test_match_p2p_tag_mismatch_leaves_both_sides_unmatched():
    traces = {
        0: [_op(0, 0, "send", peer=1, tag=3)],
        1: [_op(1, 0, "recv", peer=0, tag=7)],
    }
    matches, unsent, unrecv = match_p2p(traces)
    assert not matches and len(unsent) == 1 and len(unrecv) == 1


def test_match_p2p_channels_do_not_cross():
    traces = {
        0: [_op(0, 0, "send", peer=1, tag=0, channel="obj", eager=True)],
        1: [_op(1, 0, "recv", peer=0, tag=0, channel="typed")],
    }
    matches, unsent, unrecv = match_p2p(traces)
    assert not matches and len(unrecv) == 1
    # eager (control-plane) sends are never reported unmatched
    assert not unsent


def test_match_p2p_nonovertaking_same_envelope_in_order():
    traces = {
        0: [_op(0, 0, "send", peer=1, tag=0, count=1),
            _op(0, 1, "send", peer=1, tag=0, count=2)],
        1: [_op(1, 0, "recv", peer=0, tag=0),
            _op(1, 1, "recv", peer=0, tag=0)],
    }
    matches, _unsent, _unrecv = match_p2p(traces)
    got = {(r.index, s.count) for s, r in matches}
    assert got == {(0, 1), (1, 2)}


def test_check_collectives_kind_and_root_divergence():
    agree = {
        0: [_op(0, 0, "coll", coll="bcast", root=0)],
        1: [_op(1, 0, "coll", coll="bcast", root=0)],
    }
    assert check_collectives(agree) is None
    roots = {
        0: [_op(0, 0, "coll", coll="bcast", root=0)],
        1: [_op(1, 0, "coll", coll="bcast", root=1)],
    }
    div = check_collectives(roots)
    assert div is not None and not div.kind_mismatch
    kinds = {
        0: [_op(0, 0, "coll", coll="bcast", root=0)],
        1: [_op(1, 0, "coll", coll="barrier")],
    }
    div = check_collectives(kinds)
    assert div is not None and div.kind_mismatch
    missing = {
        0: [_op(0, 0, "coll", coll="barrier")],
        1: [],
    }
    assert check_collectives(missing) is not None


def test_simulate_head_to_head_blocking_sends_deadlock():
    traces = {
        0: [_op(0, 0, "send", peer=1, tag=0),
            _op(0, 1, "recv", peer=1, tag=0)],
        1: [_op(1, 0, "send", peer=0, tag=0),
            _op(1, 1, "recv", peer=0, tag=0)],
    }
    matches, _s, _r = match_p2p(traces)
    deadlock = simulate(traces, matches)
    assert deadlock is not None
    assert sorted(deadlock.cycle) == [0, 1]
    assert all(op.kind == "send" for op in deadlock.blocked)


def test_simulate_ordered_exchange_completes():
    traces = {
        0: [_op(0, 0, "send", peer=1, tag=0),
            _op(0, 1, "recv", peer=1, tag=0)],
        1: [_op(1, 0, "recv", peer=0, tag=0),
            _op(1, 1, "send", peer=0, tag=0)],
    }
    matches, _s, _r = match_p2p(traces)
    assert simulate(traces, matches) is None


def test_simulate_unmatched_ops_do_not_cascade_into_deadlock():
    # the unmatched recv is MTC102 territory; it must not also stall the
    # scheduler into a spurious MTC103
    traces = {
        0: [_op(0, 0, "recv", peer=1, tag=9)],
        1: [],
    }
    matches, _s, unrecv = match_p2p(traces)
    assert len(unrecv) == 1
    assert simulate(traces, matches) is None


def test_simulate_nonblocking_ring_with_waits_completes():
    traces = {}
    for rank, peer in ((0, 1), (1, 0)):
        traces[rank] = [
            _op(rank, 0, "irecv", peer=peer, tag=0),
            _op(rank, 1, "isend", peer=peer, tag=0),
            _op(rank, 2, "wait", waits_on=(0, 1)),
        ]
    result = verify_world(traces, 2)
    assert result.deadlock is None
    assert not result.unmatched_sends and not result.unmatched_recvs


# -- extraction: true positives and near-misses per rule ----------------------


def test_mtc103_ring_send_first_deadlocks_every_size():
    assert mtc_rules_of("""
        import numpy as np
        def main(comm):
            buf = np.zeros(4)
            out = np.zeros(4)
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            yield from comm.send(buf, right)
            yield from comm.recv(out, source=left)
    """) == ["MTC103"]


def test_mtc103_near_miss_sendrecv_is_clean():
    assert mtc_rules_of("""
        import numpy as np
        def main(comm):
            buf = np.zeros(4)
            out = np.zeros(4)
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            yield from comm.sendrecv(buf, right, out, left)
    """) == []


def test_mtc101_mtc102_tag_disagreement():
    assert mtc_rules_of("""
        import numpy as np
        def main(comm):
            buf = np.zeros(4)
            if comm.rank == 0:
                yield from comm.send(buf, 1, tag=3)
            elif comm.rank == 1:
                yield from comm.recv(buf, source=0, tag=7)
    """) == ["MTC101", "MTC102"]


def test_mtc101_mtc102_near_miss_agreeing_tags_clean():
    assert mtc_rules_of("""
        import numpy as np
        def main(comm):
            buf = np.zeros(4)
            if comm.rank == 0:
                yield from comm.send(buf, 1, tag=3)
            elif comm.rank == 1:
                yield from comm.recv(buf, source=0, tag=3)
    """) == []


def test_mtc104_root_divergence():
    assert mtc_rules_of("""
        def main(comm):
            if comm.rank == 0:
                value = yield from comm.bcast(1, root=0)
            else:
                value = yield from comm.bcast(None, root=1)
    """) == ["MTC104"]


def test_mtc104_near_miss_agreed_root_clean():
    assert mtc_rules_of("""
        def main(comm):
            root = 0
            if comm.rank == root:
                value = yield from comm.bcast(comm.rank, root=root)
            else:
                value = yield from comm.bcast(None, root=0)
    """) == []


def test_mtc105_truncating_receive():
    rules = mtc_rules_of("""
        import numpy as np
        def main(comm):
            if comm.rank == 0:
                big = np.zeros(16)
                yield from comm.send(big, 1)
            elif comm.rank == 1:
                small = np.zeros(8)
                yield from comm.recv(small, source=0)
    """)
    assert rules == ["MTC105", "MTC105"]  # truncation + prefix violation


def test_mtc105_near_miss_exact_fit_clean():
    assert mtc_rules_of("""
        import numpy as np
        def main(comm):
            if comm.rank == 0:
                buf = np.zeros(16)
                yield from comm.send(buf, 1)
            elif comm.rank == 1:
                buf = np.zeros(16)
                yield from comm.recv(buf, source=0)
    """) == []


def test_mtc105_strided_datatype_overruns_short_buffer():
    report = Report()
    check_module(ast.parse(textwrap.dedent("""
        import numpy as np
        from repro.datatypes import DOUBLE, Vector
        def main(comm):
            if comm.rank == 0:
                buf = np.zeros(4)
                yield from comm.send(buf, 1, datatype=DOUBLE, count=4)
            elif comm.rank == 1:
                buf = np.zeros(8)
                sparse = Vector(4, 1, 8, DOUBLE)
                yield from comm.recv(buf, source=0, datatype=sparse,
                                     count=1)
    """)), "t.py", report)
    assert [f.rule for f in report] == ["MTC105"]
    assert "needs 200" in report.findings[0].message


# -- the rank-abstraction model -----------------------------------------------


def test_intersection_discards_size_assumed_pairwise_program():
    # `peer = 1 - rank` deadlocks head-to-head at size 2, but at sizes
    # 3/4 the mismatch shows up as different (unmatched) findings, so no
    # single finding holds at every extracted size.  The verifier stays
    # quiet rather than guessing which world the author meant.
    assert mtc_rules_of("""
        import numpy as np
        def main(comm):
            buf = np.zeros(4)
            out = np.zeros(4)
            peer = (comm.rank + 1) % comm.size
            yield from comm.send(buf, peer)
            yield from comm.recv(out, peer)
    """) == []


def test_rank_guarded_pair_stays_clean_at_larger_sizes():
    # idle ranks 2/3 at the larger model sizes must not turn a correct
    # two-rank exchange into unmatched-op findings
    assert mtc_rules_of("""
        import numpy as np
        def main(comm):
            buf = np.zeros(8)
            if comm.rank == 0:
                yield from comm.send(buf, 1)
            elif comm.rank == 1:
                yield from comm.recv(buf, source=0)
    """) == []


def test_data_dependent_tag_bails_instead_of_guessing():
    stats = []
    assert mtc_rules_of("""
        import numpy as np
        def main(comm, tag):
            buf = np.zeros(4)
            if comm.rank == 0:
                yield from comm.send(buf, 1, tag=tag)
            elif comm.rank == 1:
                yield from comm.recv(buf, source=0, tag=tag)
    """, stats=stats) == []
    assert len(stats) == 1
    assert stats[0].verified_sizes == ()
    assert all("data-dependent tag" in reason
               for _size, reason in stats[0].bailed)


def test_while_loop_around_communication_bails():
    stats = []
    assert mtc_rules_of("""
        import numpy as np
        def main(comm):
            buf = np.zeros(4)
            mask = 1
            while mask < comm.size:
                yield from comm.send(buf, comm.rank ^ mask)
                mask <<= 1
    """, stats=stats) == []
    assert stats[0].verified_sizes == ()


def test_helper_functions_are_inlined_not_verified_as_roots():
    stats = []
    rules = mtc_rules_of("""
        import numpy as np
        def exchange(comm, tag):
            buf = np.zeros(4)
            if comm.rank == 0:
                yield from comm.send(buf, 1, tag=tag)
            elif comm.rank == 1:
                yield from comm.recv(buf, source=0, tag=tag + 1)
        def main(comm):
            yield from exchange(comm, 5)
    """, stats=stats)
    # the tag mismatch is found through the call site, where tag=5
    assert rules == ["MTC101", "MTC102"]
    # exchange() itself is a helper: only main() is a verification root
    assert [s.func for s in stats] == ["main"]


def test_unrolled_loop_over_statically_known_range():
    assert mtc_rules_of("""
        import numpy as np
        def main(comm):
            buf = np.zeros(4)
            if comm.rank == 0:
                for peer in range(1, comm.size):
                    yield from comm.send(buf, peer, tag=peer)
            else:
                yield from comm.recv(buf, source=0, tag=comm.rank)
    """) == []


def test_worlds_are_the_documented_sizes():
    assert WORLD_SIZES == (2, 3, 4)


# -- fixtures pinned ----------------------------------------------------------

PROTO_FIXTURES = {
    "broken_proto_deadlock.py": ["MTC103"],
    "broken_proto_tag.py": ["MTC101", "MTC102"],
    "broken_proto_trunc.py": ["MTC105", "MTC105", "MTC105"],
    "broken_proto_coll.py": ["MTC104"],
    "clean_proto.py": [],
}


@pytest.mark.parametrize("name,expected", sorted(PROTO_FIXTURES.items()))
def test_proto_fixture_findings_pinned(name, expected):
    report = analyze_file(FIXTURES / name, protocol=True)
    assert sorted(f.rule for f in report) == expected


# -- the tree-clean differential gate -----------------------------------------


def _mtc_findings(report):
    return [f for f in report if f.rule.startswith("MTC")]


def test_protocol_clean_over_petsc_and_examples():
    report, _plans = analyze_tree(
        [REPO / "src" / "repro" / "petsc", REPO / "examples"],
        dataflow=False, protocol=True)
    assert _mtc_findings(report) == []


def test_protocol_clean_over_full_tree():
    stats = []
    report, _plans = analyze_tree(
        [REPO / "src", REPO / "examples", REPO / "tests"],
        dataflow=False, protocol=True, protocol_stats=stats)
    assert _mtc_findings(report) == []
    # the gate must actually exercise the verifier, not vacuously pass
    verified = [s for s in stats if s.verified_sizes]
    assert len(verified) >= 10


# -- suppressions and LNT007 family gating ------------------------------------


def test_mtc_suppression_honoured():
    source = textwrap.dedent("""
        import numpy as np
        def main(comm):
            buf = np.zeros(4)
            out = np.zeros(4)
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            yield from comm.send(buf, right)  # analyze: ignore[MTC103]
            yield from comm.recv(out, source=left)
    """)
    report = analyze_source(source, protocol=True)
    assert not _mtc_findings(report)


def test_stale_mtc_suppression_flagged_only_when_protocol_ran():
    source = textwrap.dedent("""
        import numpy as np
        def main(comm):
            buf = np.zeros(4)
            value = yield from comm.allreduce(1.0)  # analyze: ignore[MTC104]
            return value
    """)
    with_protocol, _ = analyze_source_set([("t.py", source)],
                                          dataflow=False, protocol=True)
    assert [f.rule for f in with_protocol] == ["LNT007"]
    without, _ = analyze_source_set([("t.py", source)],
                                    dataflow=False, protocol=False)
    assert not list(without)


def test_unused_suppression_eligibility_is_family_gated():
    assert _unused_suppression_eligible("MTC101", dataflow=True,
                                        protocol=False) is False
    assert _unused_suppression_eligible("MTC101", dataflow=False,
                                        protocol=True) is True
    # existing families keep their gating
    assert _unused_suppression_eligible("REQ101", dataflow=True,
                                        protocol=True) is True
    assert _unused_suppression_eligible("SIG001", dataflow=True,
                                        protocol=True) is False


# -- hypothesis: static MTC105 against the concrete signature path ------------

_PRIMS = [("DOUBLE", DOUBLE), ("INT", INT)]


@st.composite
def _datatype_expr(draw):
    """A datatype as (source expression, constructed object)."""
    kind = draw(st.sampled_from(["prim", "contig", "vector"]))
    name, prim = draw(st.sampled_from(_PRIMS))
    if kind == "prim":
        return name, prim
    if kind == "contig":
        n = draw(st.integers(1, 4))
        return f"Contiguous({n}, {name})", Contiguous(n, prim)
    count = draw(st.integers(1, 3))
    blocklength = draw(st.integers(1, 3))
    stride = blocklength + draw(st.integers(0, 2))
    return (f"Vector({count}, {blocklength}, {stride}, {name})",
            Vector(count, blocklength, stride, prim))


@settings(max_examples=40, deadline=None)
@given(send=_datatype_expr(), recv=_datatype_expr(),
       send_count=st.integers(1, 4), recv_count=st.integers(1, 4))
def test_static_mtc105_agrees_with_concrete_transfer_verdict(
        send, recv, send_count, recv_count):
    send_expr, send_dt = send
    recv_expr, recv_dt = recv
    source = textwrap.dedent(f"""
        import numpy as np
        from repro.datatypes import Contiguous, Vector, DOUBLE, INT
        def main(comm):
            buf = np.zeros(512, dtype=np.float64)
            if comm.rank == 0:
                yield from comm.send(buf, 1, datatype={send_expr},
                                     count={send_count})
            elif comm.rank == 1:
                yield from comm.recv(buf, source=0, datatype={recv_expr},
                                     count={recv_count})
    """)
    report = Report()
    check_module(ast.parse(source), "t.py", report)
    static_trunc = any("truncation" in f.message for f in report)
    static_prefix_bad = any("not a prefix" in f.message for f in report)
    verdict = transfer_verdict(send_dt, send_count, recv_dt, recv_count)
    assert static_trunc == verdict.truncates
    assert static_prefix_bad == (not verdict.prefix_ok)
    # nothing else may fire: the 4096-byte buffer fits every generated
    # datatype's full extent
    assert all(f.rule == "MTC105" for f in report)


# -- CLI ----------------------------------------------------------------------


def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.analyze", *argv],
        capture_output=True, text=True, cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_protocol_sarif_on_broken_fixture():
    proc = _run_cli("--protocol", "--format", "sarif",
                    str(FIXTURES / "broken_proto_tag.py"))
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    ids = {r["ruleId"] for r in doc["runs"][0]["results"]}
    assert ids == {"MTC101", "MTC102"}
    levels = {r["level"] for r in doc["runs"][0]["results"]}
    assert levels == {"error"}


def test_cli_protocol_clean_fixture_exits_zero():
    proc = _run_cli("--protocol", str(FIXTURES / "clean_proto.py"))
    assert proc.returncode == 0
    assert "no findings" in proc.stdout


def test_cli_protocol_stats_lists_candidates():
    proc = _run_cli("--protocol", "--protocol-stats",
                    str(FIXTURES / "clean_proto.py"))
    assert proc.returncode == 0
    assert "candidate function(s) verified" in proc.stdout
    assert "ring_shift_sendrecv" in proc.stdout
