"""Property-based fuzzing of nested derived datatypes: random type trees
pack/unpack against a brute-force element-enumeration oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import (
    DOUBLE,
    Contiguous,
    HVector,
    Indexed,
    IndexedBlock,
    Resized,
    TypedBuffer,
    Vector,
)


@st.composite
def _nonoverlapping_disps(draw, nblocks, blocklength):
    """Ascending displacements with gaps, each fitting `blocklength`."""
    disps = []
    pos = 0
    for _ in range(nblocks):
        pos += draw(st.integers(0, 3))
        disps.append(pos)
        pos += blocklength
    return disps


@st.composite
def datatype_tree(draw, depth=0):
    """A random nested datatype over DOUBLE, with bounded size."""
    if depth >= 2:
        return DOUBLE
    kind = draw(st.sampled_from([
        "primitive", "contiguous", "vector", "hvector", "resized",
        "indexed", "indexed_block",
    ]))
    if kind == "primitive":
        return DOUBLE
    base = draw(datatype_tree(depth=depth + 1))
    if kind == "contiguous":
        return Contiguous(draw(st.integers(1, 4)), base)
    if kind == "vector":
        blocklength = draw(st.integers(1, 3))
        stride = blocklength + draw(st.integers(0, 3))
        return Vector(draw(st.integers(1, 4)), blocklength, stride, base)
    if kind == "hvector":
        blocklength = draw(st.integers(1, 2))
        min_stride = blocklength * base.extent
        stride = min_stride + 8 * draw(st.integers(0, 3))
        return HVector(draw(st.integers(1, 4)), blocklength, stride, base)
    if kind == "indexed":
        # Indexed over a contiguous base only (matching the MPI fast path)
        base = DOUBLE
        nblocks = draw(st.integers(1, 4))
        lens = [draw(st.integers(1, 3)) for _ in range(nblocks)]
        disps = []
        pos = 0
        for length in lens:
            pos += draw(st.integers(0, 3))
            disps.append(pos)
            pos += length
        return Indexed(lens, disps, base)
    if kind == "indexed_block":
        blocklength = draw(st.integers(1, 3))
        nblocks = draw(st.integers(1, 4))
        disps = draw(_nonoverlapping_disps(nblocks, blocklength))
        return IndexedBlock(blocklength, disps, base)
    # resized: only grow the extent (shrinking can overlap copies)
    return Resized(base, base.extent + 8 * draw(st.integers(0, 2)))


def brute_force_blocks(dt, base_offset=0):
    """Element-level byte offsets of one instance, via the definition."""
    from repro.datatypes import Primitive

    if isinstance(dt, Primitive):
        return [base_offset]
    if isinstance(dt, Contiguous):
        out = []
        for i in range(dt.count):
            out.extend(brute_force_blocks(dt.base, base_offset + i * dt.base.extent))
        return out
    if isinstance(dt, Vector):
        out = []
        for i in range(dt.count):
            start = base_offset + i * dt.stride * dt.base.extent
            for j in range(dt.blocklength):
                out.extend(brute_force_blocks(dt.base, start + j * dt.base.extent))
        return out
    if isinstance(dt, HVector):
        out = []
        for i in range(dt.count):
            start = base_offset + i * dt.stride_bytes
            for j in range(dt.blocklength):
                out.extend(brute_force_blocks(dt.base, start + j * dt.base.extent))
        return out
    if isinstance(dt, Indexed):
        out = []
        for length, disp in zip(dt.blocklengths.tolist(), dt.displacements.tolist()):
            for j in range(length):
                out.extend(
                    brute_force_blocks(dt.base, base_offset + (disp + j) * dt.base.extent)
                )
        return out
    if isinstance(dt, IndexedBlock):
        out = []
        for disp in dt.displacements.tolist():
            for j in range(dt.blocklength):
                out.extend(
                    brute_force_blocks(dt.base, base_offset + (disp + j) * dt.base.extent)
                )
        return out
    if isinstance(dt, Resized):
        return brute_force_blocks(dt.base, base_offset)
    raise AssertionError(type(dt))


@given(datatype_tree(), st.integers(1, 3))
@settings(max_examples=200, deadline=None)
def test_pack_matches_brute_force(dt, count):
    full = Contiguous(count, dt) if count > 1 else dt
    nbytes_needed = full.extent
    n = nbytes_needed // 8 + 1
    buf = np.arange(n, dtype=np.float64)
    tb = TypedBuffer(buf, dt, count=count)
    got = tb.pack().view(np.float64)
    offsets = []
    for i in range(count):
        offsets.extend(brute_force_blocks(dt, i * dt.extent))
    expect = buf[np.asarray(offsets) // 8]
    assert np.array_equal(got, expect)


@given(datatype_tree(), st.integers(1, 3))
@settings(max_examples=200, deadline=None)
def test_unpack_roundtrip(dt, count):
    full_extent = (Contiguous(count, dt) if count > 1 else dt).extent
    n = full_extent // 8 + 1
    src = np.arange(n, dtype=np.float64) + 1.0
    packed = TypedBuffer(src, dt, count=count).pack()
    dst = np.zeros(n)
    TypedBuffer(dst, dt, count=count).unpack(packed)
    offsets = []
    for i in range(count):
        offsets.extend(brute_force_blocks(dt, i * dt.extent))
    sel = np.asarray(offsets) // 8
    assert np.array_equal(dst[sel], src[sel])
    untouched = np.setdiff1d(np.arange(n), sel)
    assert np.all(dst[untouched] == 0.0)


@given(datatype_tree())
@settings(max_examples=200, deadline=None)
def test_size_extent_invariants(dt):
    blocks = dt.flatten()
    assert dt.size == blocks.size
    assert dt.size <= dt.extent or dt.num_blocks == 1
    # blocks fit inside the extent
    assert int((blocks.offsets + blocks.lengths).max()) <= dt.extent
    # the block count never exceeds the element count
    assert dt.num_blocks <= dt.size // 8
